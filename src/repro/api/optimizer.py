"""The persistent optimization session.

The paper's workflow is compile-once/serve-forever: an expensive joint
schedule search at compilation time, then a standalone deployable module.
:class:`Optimizer` is the session object that owns that workflow for one
target:

* it holds the :class:`~repro.core.tuning_db.TuningDatabase`, so every model
  compiled in the session reuses the local-search results of every earlier
  one (ResNet-50 and SSD-ResNet-50 share most conv workloads);
* given a ``cache_dir`` it becomes durable: the tuning database is persisted
  across sessions, and every compiled module is saved as an on-disk artifact
  keyed by a fingerprint of the target, the configuration, the model
  structure and the bound parameters.  A later ``compile`` of the same model
  is a pure cache hit — no search, no passes, just an artifact load — while
  any change to the inputs changes the fingerprint and transparently
  recompiles instead of serving a stale module.

Typical use::

    from repro.api import InferenceEngine, Optimizer

    optimizer = Optimizer("skylake", cache_dir="~/.cache/neocpu")
    module = optimizer.compile("resnet-50")
    engine = InferenceEngine(module)
    outputs = engine.run({"data": image})
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from ..core.config import CompileConfig
from ..core.tuning_db import TuningDatabase
from ..graph.graph import Graph
from ..hardware.cpu import CPUSpec
from ..hardware.presets import get_target
from ..models.zoo import get_model
from ..runtime.module import CompiledModule
from . import deployment
from .engine import InferenceEngine

__all__ = ["Optimizer"]

ModelLike = Union[str, Graph]


class Optimizer:
    """A compile session for one CPU target, with durable caches.

    Args:
        target: a :class:`CPUSpec` or preset alias (``"skylake"``, ``"epyc"``,
            ``"arm"`` ...).
        config: session-default compilation options (full NeoCPU pipeline by
            default); individual :meth:`compile` calls may override it.
        cache_dir: directory for the on-disk caches.  Created if missing.
            Holds the persisted tuning database (``tuning_db.json``) and the
            compiled-module artifacts (``modules/``).  Omit for a purely
            in-memory session.
        database: share an existing in-memory tuning database (e.g. across
            optimizers for different targets, whose entries never collide —
            keys include the CPU name).  When both ``cache_dir`` and
            ``database`` are given, the persisted entries are merged into the
            shared database.
    """

    #: File names of the durable caches inside ``cache_dir``; shared with
    #: :class:`~repro.api.ModelRepository` and the benchmark harness, which
    #: all point at the same layout.
    TUNING_DB_FILENAME = deployment.TUNING_DB_FILENAME
    MODULE_CACHE_DIRNAME = deployment.MODULE_CACHE_DIRNAME
    ARTIFACT_SUFFIX = deployment.ARTIFACT_SUFFIX

    def __init__(
        self,
        target: "CPUSpec | str",
        config: Optional[CompileConfig] = None,
        cache_dir: Optional["str | Path"] = None,
        database: Optional[TuningDatabase] = None,
    ) -> None:
        self.cpu = target if isinstance(target, CPUSpec) else get_target(target)
        self.config = config if config is not None else CompileConfig()
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.database = database if database is not None else TuningDatabase()
        if self.cache_dir is not None:
            self.database.merge(self.load_tuning_database(self.cache_dir))

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    @classmethod
    def load_tuning_database(cls, cache_dir: "str | Path") -> TuningDatabase:
        """Load the tuning database persisted in ``cache_dir``.

        Returns an empty database when none was persisted yet, or when the
        persisted file uses an unmigratable schema (stale caches regenerate;
        they are never allowed to poison a session).
        """
        return deployment.load_tuning_database(cache_dir)

    def save_caches(self) -> None:
        """Persist the tuning database to ``cache_dir`` (no-op without one)."""
        if self.cache_dir is not None:
            self.database.save(self.cache_dir / self.TUNING_DB_FILENAME)

    def fingerprint(
        self,
        graph: Graph,
        config: Optional[CompileConfig] = None,
        params: Optional[Mapping[str, np.ndarray]] = None,
    ) -> str:
        """The compilation fingerprint a module for ``graph`` would carry.

        Combines the (target, config) fingerprint with the structural hash of
        the source graph and the digest of explicitly-bound parameters; any
        change to any of them invalidates cached artifacts.
        """
        return deployment.module_fingerprint(
            self.cpu, config or self.config, graph, params
        )

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(
        self,
        model: ModelLike,
        params: Optional[Mapping[str, np.ndarray]] = None,
        config: Optional[CompileConfig] = None,
        in_place: bool = False,
        force: bool = False,
    ) -> CompiledModule:
        """Compile a model for this session's target.

        Thin single-target wrapper over the deployment build path
        (:func:`repro.api.deployment.compile_for_target`); the multi-target
        :func:`repro.api.build` fans the same path out across presets.

        Args:
            model: a model-zoo name (``"resnet-50"``) or a :class:`Graph`.
                Graphs are compiled from a structural copy — the caller's
                object is never mutated — unless ``in_place=True``.
            params: concrete parameter values to bind before compilation
                (enables compile-time pre-transformation of weights).
            config: per-call override of the session configuration.
            in_place: optimize the given graph directly (historical
                behavior; incompatible with the artifact cache's guarantee
                that the source graph stays reusable).
            force: skip the artifact cache and recompile even on a hit.

        Returns:
            The compiled module.  ``module.fingerprint`` records the
            compilation fingerprint; with a ``cache_dir`` the module is also
            persisted for the next session.
        """
        from_zoo = isinstance(model, str)
        graph = get_model(model) if from_zoo else model
        return deployment.compile_for_target(
            graph,
            self.cpu,
            config=config if config is not None else self.config,
            params=params,
            database=self.database,
            cache_dir=self.cache_dir,
            in_place=in_place,
            force=force,
            # A zoo-name compile owns its freshly built graph outright, so
            # the defensive copy would protect an object nobody else can see.
            owns_graph=from_zoo,
        )

    def build(
        self,
        model: ModelLike,
        targets: "list[str | CPUSpec]",
        params: Optional[Mapping[str, np.ndarray]] = None,
        config: Optional[CompileConfig] = None,
        **kwargs,
    ) -> "deployment.ArtifactBundle":
        """Build a multi-target bundle from this session (see :func:`repro.api.build`).

        The session's target is always included; its tuning database and
        ``cache_dir`` are shared with the build.
        """
        if isinstance(targets, (str, CPUSpec)):  # a bare target, not a list
            targets = [targets]
        return deployment.build(
            model,
            [self.cpu, *targets],
            params=params,
            config=config if config is not None else self.config,
            cache_dir=self.cache_dir,
            database=self.database,
            **kwargs,
        )

    def engine(
        self,
        model: ModelLike,
        params: Optional[Mapping[str, np.ndarray]] = None,
        config: Optional[CompileConfig] = None,
        seed: int = 0,
    ) -> InferenceEngine:
        """Compile (or load from cache) and wrap in an :class:`InferenceEngine`."""
        module = self.compile(model, params=params, config=config)
        return InferenceEngine(module, params=params, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        cache = str(self.cache_dir) if self.cache_dir is not None else None
        return (
            f"Optimizer(target={self.cpu.name!r}, "
            f"opt_level={self.config.opt_level!r}, cache_dir={cache!r}, "
            f"tuned_workloads={len(self.database)})"
        )

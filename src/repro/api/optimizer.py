"""The persistent optimization session.

The paper's workflow is compile-once/serve-forever: an expensive joint
schedule search at compilation time, then a standalone deployable module.
:class:`Optimizer` is the session object that owns that workflow for one
target:

* it holds the :class:`~repro.core.tuning_db.TuningDatabase`, so every model
  compiled in the session reuses the local-search results of every earlier
  one (ResNet-50 and SSD-ResNet-50 share most conv workloads);
* given a ``cache_dir`` it becomes durable: the tuning database is persisted
  across sessions, and every compiled module is saved as an on-disk artifact
  keyed by a fingerprint of the target, the configuration, the model
  structure and the bound parameters.  A later ``compile`` of the same model
  is a pure cache hit — no search, no passes, just an artifact load — while
  any change to the inputs changes the fingerprint and transparently
  recompiles instead of serving a stale module.

Typical use::

    from repro.api import InferenceEngine, Optimizer

    optimizer = Optimizer("skylake", cache_dir="~/.cache/neocpu")
    module = optimizer.compile("resnet-50")
    engine = InferenceEngine(module)
    outputs = engine.run({"data": image})
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from ..core.compiler import compile_graph
from ..core.config import CompileConfig
from ..core.tuning_db import TuningDatabase, TuningDatabaseMigrationError
from ..graph.graph import Graph
from ..hardware.cpu import CPUSpec
from ..hardware.presets import get_target
from ..models.zoo import get_model
from ..runtime.artifact import (
    ArtifactError,
    compilation_fingerprint,
    graph_fingerprint,
    params_fingerprint,
)
from ..runtime.module import CompiledModule
from .engine import InferenceEngine

__all__ = ["Optimizer"]

ModelLike = Union[str, Graph]


class Optimizer:
    """A compile session for one CPU target, with durable caches.

    Args:
        target: a :class:`CPUSpec` or preset alias (``"skylake"``, ``"epyc"``,
            ``"arm"`` ...).
        config: session-default compilation options (full NeoCPU pipeline by
            default); individual :meth:`compile` calls may override it.
        cache_dir: directory for the on-disk caches.  Created if missing.
            Holds the persisted tuning database (``tuning_db.json``) and the
            compiled-module artifacts (``modules/``).  Omit for a purely
            in-memory session.
        database: share an existing in-memory tuning database (e.g. across
            optimizers for different targets, whose entries never collide —
            keys include the CPU name).  When both ``cache_dir`` and
            ``database`` are given, the persisted entries are merged into the
            shared database.
    """

    #: File names of the durable caches inside ``cache_dir``; the benchmark
    #: harness points its session fixture at the same layout.
    TUNING_DB_FILENAME = "tuning_db.json"
    MODULE_CACHE_DIRNAME = "modules"
    ARTIFACT_SUFFIX = ".neocpu"

    def __init__(
        self,
        target: "CPUSpec | str",
        config: Optional[CompileConfig] = None,
        cache_dir: Optional["str | Path"] = None,
        database: Optional[TuningDatabase] = None,
    ) -> None:
        self.cpu = target if isinstance(target, CPUSpec) else get_target(target)
        self.config = config if config is not None else CompileConfig()
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.database = database if database is not None else TuningDatabase()
        if self.cache_dir is not None:
            self.database.merge(self.load_tuning_database(self.cache_dir))

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    @classmethod
    def load_tuning_database(cls, cache_dir: "str | Path") -> TuningDatabase:
        """Load the tuning database persisted in ``cache_dir``.

        Returns an empty database when none was persisted yet, or when the
        persisted file uses an incompatible schema (stale caches regenerate;
        they are never allowed to poison a session).
        """
        path = Path(cache_dir).expanduser() / cls.TUNING_DB_FILENAME
        if not path.exists():
            return TuningDatabase()
        try:
            return TuningDatabase.load(path)
        except (TuningDatabaseMigrationError, OSError, ValueError, KeyError):
            return TuningDatabase()

    def save_caches(self) -> None:
        """Persist the tuning database to ``cache_dir`` (no-op without one)."""
        if self.cache_dir is not None:
            self.database.save(self.cache_dir / self.TUNING_DB_FILENAME)

    def _artifact_path(self, model_name: str, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        safe_name = "".join(c if c.isalnum() or c in "-_." else "_" for c in model_name)
        return (
            self.cache_dir
            / self.MODULE_CACHE_DIRNAME
            / f"{safe_name}-{fingerprint[:16]}{self.ARTIFACT_SUFFIX}"
        )

    def fingerprint(
        self,
        graph: Graph,
        config: Optional[CompileConfig] = None,
        params: Optional[Mapping[str, np.ndarray]] = None,
    ) -> str:
        """The compilation fingerprint a module for ``graph`` would carry.

        Combines the (target, config) fingerprint with the structural hash of
        the source graph and the digest of explicitly-bound parameters; any
        change to any of them invalidates cached artifacts.
        """
        base = compilation_fingerprint(self.cpu, config or self.config)
        return f"{base[:32]}{graph_fingerprint(graph)[:16]}{params_fingerprint(params)[:16]}"

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(
        self,
        model: ModelLike,
        params: Optional[Mapping[str, np.ndarray]] = None,
        config: Optional[CompileConfig] = None,
        in_place: bool = False,
        force: bool = False,
    ) -> CompiledModule:
        """Compile a model for this session's target.

        Args:
            model: a model-zoo name (``"resnet-50"``) or a :class:`Graph`.
                Graphs are compiled from a structural copy — the caller's
                object is never mutated — unless ``in_place=True``.
            params: concrete parameter values to bind before compilation
                (enables compile-time pre-transformation of weights).
            config: per-call override of the session configuration.
            in_place: optimize the given graph directly (historical
                behavior; incompatible with the artifact cache's guarantee
                that the source graph stays reusable).
            force: skip the artifact cache and recompile even on a hit.

        Returns:
            The compiled module.  ``module.fingerprint`` records the
            compilation fingerprint; with a ``cache_dir`` the module is also
            persisted for the next session.
        """
        from_zoo = isinstance(model, str)
        graph = get_model(model) if from_zoo else model
        cfg = config if config is not None else self.config
        fingerprint = self.fingerprint(graph, cfg, params)
        path = self._artifact_path(graph.name, fingerprint)

        # in_place promises "mutate *this* graph object": serving a cached
        # artifact instead would keep the promise on cold runs and break it on
        # warm runs, so the cache is bypassed for in-place compiles.
        if path is not None and path.exists() and not force and not in_place:
            try:
                return CompiledModule.load(path, expected_fingerprint=fingerprint)
            except ArtifactError:
                pass  # stale or corrupt artifact: fall through and recompile

        module = compile_graph(
            graph,
            self.cpu,
            config=cfg,
            params=params,
            tuning_database=self.database,
            # A zoo-name compile owns its freshly built graph outright, so the
            # defensive copy would protect an object nobody else can see.
            in_place=in_place or from_zoo,
        )
        module.fingerprint = fingerprint
        if path is not None:
            module.save(path, fingerprint=fingerprint)
            self.save_caches()
        return module

    def engine(
        self,
        model: ModelLike,
        params: Optional[Mapping[str, np.ndarray]] = None,
        config: Optional[CompileConfig] = None,
        seed: int = 0,
    ) -> InferenceEngine:
        """Compile (or load from cache) and wrap in an :class:`InferenceEngine`."""
        module = self.compile(model, params=params, config=config)
        return InferenceEngine(module, params=params, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        cache = str(self.cache_dir) if self.cache_dir is not None else None
        return (
            f"Optimizer(target={self.cpu.name!r}, "
            f"opt_level={self.config.opt_level!r}, cache_dir={cache!r}, "
            f"tuned_workloads={len(self.database)})"
        )

"""Serving-grade inference surface over a compiled module.

A :class:`InferenceEngine` is what a deployment holds on to: it binds the
parameters once, keeps the executor (and its constant-tensor buffers) alive
across requests, and offers single-request (:meth:`run`), batched
(:meth:`run_batch`) and thread-pooled concurrent (:meth:`serve_concurrent`)
entry points plus the analytical profile of the module it serves.  This
replaces handing a raw :class:`~repro.runtime.executor.GraphExecutor` to
callers: the engine owns executor construction, so the expensive parts
(parameter initialization, derived-constant resolution, constant wrapping)
are paid once per engine, not once per request.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..costmodel.graph_cost import LatencyReport
from ..runtime.module import CompiledModule

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Run inference requests against a compiled module.

    Args:
        module: the compiled module to serve.
        params: concrete parameter values to bind; anything missing is
            initialized deterministically from ``seed`` (matching
            :class:`~repro.runtime.executor.GraphExecutor` semantics).
        seed: RNG seed for parameters without explicit values.
    """

    def __init__(
        self,
        module: CompiledModule,
        params: Optional[Mapping[str, np.ndarray]] = None,
        seed: int = 0,
    ) -> None:
        self.module = module
        self._executor = module.create_executor(params, seed)
        self._lock = threading.Lock()
        self._requests_served = 0

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    @property
    def requests_served(self) -> int:
        """Total number of inference requests this engine has completed."""
        return self._requests_served

    def run(self, inputs: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Serve one request: input-name -> array mapping, outputs as a list."""
        outputs = self._executor.run(inputs)
        with self._lock:
            self._requests_served += 1
        return outputs

    def run_single(self, **inputs: np.ndarray) -> np.ndarray:
        """Convenience wrapper returning the first output only."""
        return self.run(inputs)[0]

    def run_batch(
        self, requests: Sequence[Mapping[str, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Serve a sequence of requests on the same executor.

        Buffer allocation is amortized across the batch: parameters were
        bound at engine construction and the executor reuses its cached
        constant tensors for every request, so each element only pays for the
        actual operator computation.
        """
        return [self.run(request) for request in requests]

    def serve_concurrent(
        self,
        requests: Sequence[Mapping[str, np.ndarray]],
        max_workers: Optional[int] = None,
    ) -> List[List[np.ndarray]]:
        """Serve many requests concurrently on a thread pool.

        Results are returned in request order.  The executor is stateless
        across runs (each request builds its own value table), so concurrent
        requests are safe and, the kernels being numpy-bound, overlap well —
        this is the multi-request throughput mode of the engine.

        Args:
            requests: the request list.
            max_workers: thread-pool size; defaults to
                ``min(len(requests), cpu_cores of the target)``.
        """
        if not requests:
            return []
        if max_workers is None:
            max_workers = min(len(requests), self.module.cpu.num_cores)
        if max_workers <= 1 or len(requests) == 1:
            return self.run_batch(requests)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.run, requests))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def profile(
        self,
        num_threads: Optional[int] = None,
    ) -> LatencyReport:
        """Per-operator latency breakdown of the served module."""
        return self.module.profile(num_threads)

    def estimate_latency_ms(self, num_threads: Optional[int] = None) -> float:
        """Estimated per-request latency of the served module (ms)."""
        return self.module.estimate_latency_ms(num_threads)

    def summary(self) -> str:
        lines = [
            f"InferenceEngine({self.module.graph.name} on {self.module.cpu.name})",
            f"  requests served: {self._requests_served}",
        ]
        return "\n".join(lines) + "\n" + self.module.summary()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InferenceEngine(model={self.module.graph.name!r}, "
            f"target={self.module.cpu.name!r}, served={self._requests_served})"
        )

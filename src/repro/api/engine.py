"""Serving-grade inference surface over a compiled module.

A :class:`InferenceEngine` is what a deployment holds on to: it binds the
parameters once, keeps the executor (and its constant-tensor buffers) alive
across requests, and serves every request through a
:class:`~repro.api.scheduler.RequestScheduler` — a bounded queue with
per-request deadlines and dynamic batching.  ``run``, ``run_batch`` and
``serve_concurrent`` are all views over the same scheduler: concurrent
shape-compatible requests are coalesced into a single executor pass over the
stacked batch (the batch axis of every kernel is vectorized, so one pass over
N samples costs far less than N passes), while response order, per-request
deadlines and error attribution are preserved by per-request futures.

Batching changes nothing about the numbers: the kernels are batch-invariant
(each sample takes the same arithmetic path at any batch size), so a
dynamically batched response is byte-identical to a sequential ``run`` —
the stress suite in ``tests/test_scheduler.py`` asserts exactly that.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..costmodel.graph_cost import LatencyReport
from ..graph.graph import Graph
from ..runtime.module import CompiledModule
from ..runtime.threadpool import BufferPool
from ..tensor.tensor import Tensor
from .scheduler import (
    DEFAULT_PRIORITY,
    DEFAULT_PRIORITY_WEIGHTS,
    AdaptiveTimeout,
    RequestScheduler,
    SchedulerStats,
    _attach_index,
)

__all__ = ["InferenceEngine", "batchability_report"]


def batchability_report(graph: Graph) -> Optional[str]:
    """Why requests for this graph cannot be coalesced — or ``None`` if they can.

    A graph is *batch-stackable* when the batch axis is a free leading extent
    end to end: every input and output carries a symbolic batch dim (the
    builder declares one on any leading, unblocked ``N`` axis, and shape
    inference propagates it), and no operator folds the batch into another
    extent — a ``reshape`` to a literal leading shape, a ``-1`` reshape whose
    wildcard does not resolve to the batch, a ``transpose`` that moves axis
    0, a ``concat``/``softmax`` along the batch axis.  The first offending
    node is named so :meth:`InferenceEngine.describe` can say exactly what
    broke batchability.  Non-batchable graphs still get queueing and
    deadlines; their requests simply execute one at a time.
    """
    for node in graph.topological_order():
        if node.is_input:
            spec = node.spec
            if spec is None:
                return f"input {node.name!r} has no inferred TensorSpec"
            if not spec.batch_polymorphic:
                return (
                    f"input {node.name!r} was built with a fixed batch extent "
                    f"(layout {spec.layout}, shape {spec.logical_shape})"
                )
            continue
        if node.is_constant:
            continue
        producer = node.inputs[0] if node.inputs else None
        upstream_free = (
            producer is not None
            and producer.spec is not None
            and producer.spec.batch_polymorphic
        )
        if not upstream_free:
            # This node does not sit on the batch path (e.g. it reshapes a
            # constant table): it cannot fold the batch into anything, so
            # none of the structural checks apply.  If the batch path itself
            # was broken upstream, the output-spec check below reports it.
            continue
        if node.op == "reshape":
            new_shape = tuple(node.attrs.get("new_shape", ()))
            if not new_shape or new_shape[0] != -1:
                return (
                    f"reshape {node.name!r} bakes a literal leading extent "
                    f"{new_shape[:1] or '()'} into its new_shape (emit -1 for "
                    f"the batch dim instead)"
                )
            if node.spec is not None and not node.spec.batch_polymorphic:
                return (
                    f"reshape {node.name!r}: the -1 wildcard resolves to "
                    f"{node.spec.logical_shape[0]}, not the batch extent, so "
                    f"the batch is folded into another dim"
                )
        elif node.op == "transpose":
            axes = tuple(int(a) for a in node.attrs.get("axes", ()))
            if not axes or axes[0] != 0:
                return f"transpose {node.name!r} moves the batch axis (axes={axes})"
        elif node.op == "concat":
            if str(node.attrs.get("axis", "C")).upper() == "N":
                return f"concat {node.name!r} concatenates along the batch axis"
        elif node.op == "softmax":
            axis = int(node.attrs.get("axis", -1))
            rank = (
                len(node.spec.logical_shape) if node.spec is not None else None
            )
            if axis == 0 or (rank and axis % rank == 0):
                return f"softmax {node.name!r} normalizes across the batch axis"
    for node in graph.outputs:
        spec = node.spec
        if spec is None:
            return f"output {node.name!r} has no inferred TensorSpec"
        if not spec.batch_polymorphic:
            return (
                f"output {node.name!r} ({node.op or node.kind}) does not carry "
                f"the batch as a free leading extent (layout {spec.layout}, "
                f"shape {spec.logical_shape})"
            )
    return None


def _graph_is_batchable(graph: Graph) -> bool:
    """Can requests for this graph be coalesced along the batch axis?"""
    return batchability_report(graph) is None


class InferenceEngine:
    """Run inference requests against a compiled module.

    Args:
        module: the compiled module to serve.
        params: concrete parameter values to bind; anything missing is
            initialized deterministically from ``seed`` (matching
            :class:`~repro.runtime.executor.GraphExecutor` semantics).
        seed: RNG seed for parameters without explicit values.
        max_batch_size: largest number of concurrent requests coalesced into
            one executor pass (ignored — forced to 1 — when the graph cannot
            be batch-stacked).
        batch_timeout_ms: how long the scheduler waits for additional
            compatible requests before dispatching a partial batch; bounds
            the latency cost of batching.  Pass ``"auto"`` to derive the
            window from the observed inter-arrival rate
            (:class:`~repro.api.AdaptiveTimeout`).
        queue_depth: bound of the request queue; submission blocks (up to the
            request deadline) while the queue is full.
        num_workers: scheduler worker threads executing dispatched batches.
            Defaults to 2 for batchable graphs (coalescing, not thread
            parallelism, is the throughput lever there) and to the target's
            core count (capped at 8) for non-batchable graphs, whose only
            overlap is concurrent executor passes.
        priority_weights: request classes and their weighted-fair service
            weights (default
            :data:`~repro.api.scheduler.DEFAULT_PRIORITY_WEIGHTS`:
            interactive 8, normal 4, bulk 1).  Every serving entry point
            accepts ``priority=<class>``; classes are dispatched
            weighted-fair and never share a batch.
        default_priority: the class of requests submitted without an
            explicit ``priority=``.
        trace_dir: when given, attach a :class:`repro.trace.TraceRecorder`
            and record the full per-request event stream (arrival, queue
            enter/exit, batch membership, executor start/end, resolution)
            into this directory for trace-driven replay.  None records
            nothing.
    """

    def __init__(
        self,
        module: CompiledModule,
        params: Optional[Mapping[str, np.ndarray]] = None,
        seed: int = 0,
        *,
        max_batch_size: int = 8,
        batch_timeout_ms: "float | str" = 2.0,
        queue_depth: int = 256,
        num_workers: Optional[int] = None,
        priority_weights: Optional[Mapping[str, float]] = None,
        default_priority: Optional[str] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.module = module
        self._executor = module.create_executor(params, seed)
        self._input_specs = {
            node.name: node.spec
            for node in module.graph.topological_order()
            if node.is_input
        }
        #: Why the graph cannot be batch-stacked (None when it can); surfaced
        #: through :meth:`describe` and :meth:`summary`.
        self.batchability_reason = batchability_report(module.graph)
        self.batchable = self.batchability_reason is None
        self.max_batch_size = max_batch_size if self.batchable else 1
        # Validate eagerly: the scheduler is created lazily on the first
        # request, and a typo like "atuo" should fail here, not on a serving
        # thread deep inside the first submit.
        if isinstance(batch_timeout_ms, str):
            if batch_timeout_ms != "auto":
                raise ValueError(
                    f"batch_timeout_ms must be a number, 'auto' or an "
                    f"AdaptiveTimeout, got {batch_timeout_ms!r}"
                )
        elif isinstance(batch_timeout_ms, (int, float)):
            if batch_timeout_ms < 0:
                raise ValueError("batch_timeout_ms must be >= 0")
        elif not isinstance(batch_timeout_ms, AdaptiveTimeout):
            raise ValueError(
                f"batch_timeout_ms must be a number, 'auto' or an "
                f"AdaptiveTimeout, got {type(batch_timeout_ms).__name__}"
            )
        self.batch_timeout_ms = batch_timeout_ms
        self.queue_depth = queue_depth
        if num_workers is None:
            num_workers = 2 if self.batchable else min(8, module.cpu.num_cores)
        self.num_workers = num_workers
        self.priority_weights = priority_weights
        self.default_priority = default_priority
        self.trace_dir = trace_dir
        self._recorder = None
        self._buffers = BufferPool()
        self._scheduler: Optional[RequestScheduler] = None
        self._scheduler_lock = threading.Lock()
        #: Set by :func:`repro.api.load_engine`: the artifact file this
        #: engine serves from (pinned against repository GC while open) and
        #: how its payload was chosen ("fingerprint", "compatible:<score>"
        #: or "recompiled").
        self.artifact_path = None
        self.host_match: Optional[str] = None
        self.served_target: Optional[str] = None
        self._close_hooks: List = []
        self._close_hooks_fired = False
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # scheduler plumbing
    # ------------------------------------------------------------------ #
    @property
    def scheduler(self) -> RequestScheduler:
        """The engine's request scheduler (created on first use)."""
        if self._scheduler is None:
            with self._scheduler_lock:
                if self._scheduler is None:
                    self._scheduler = RequestScheduler(
                        self._execute_group,
                        max_batch_size=self.max_batch_size,
                        batch_timeout_ms=self.batch_timeout_ms,
                        queue_depth=self.queue_depth,
                        num_workers=self.num_workers,
                        priority_weights=self.priority_weights,
                        default_priority=self.default_priority,
                        signature=self._request_signature,
                        name=f"neocpu-{self.module.graph.name}",
                        recorder=self._make_recorder(),
                    )
        return self._scheduler

    def _make_recorder(self):
        """Open the scheduler's trace recorder (None when tracing is off).

        The recorder's manifest carries everything the replayer needs to
        rebuild this configuration: the resolved scheduler knobs, the model,
        and (under adaptive batching) the AdaptiveTimeout parameters.
        """
        if self.trace_dir is None:
            return None
        from ..trace.recorder import TraceRecorder  # deferred: no import cycle

        timeout = self.batch_timeout_ms
        adaptive = None
        if isinstance(timeout, AdaptiveTimeout):
            adaptive = {
                "alpha": timeout.alpha,
                "multiplier": timeout.multiplier,
                "min_ms": timeout.min_s * 1e3,
                "max_ms": timeout.max_s * 1e3,
                "initial_ms": timeout.initial_s * 1e3,
            }
            timeout = "auto"
        elif timeout == "auto":
            adaptive = {}  # AdaptiveTimeout defaults
        weights = dict(
            DEFAULT_PRIORITY_WEIGHTS
            if self.priority_weights is None
            else self.priority_weights
        )
        knobs = {
            "max_batch_size": self.max_batch_size,
            "batch_timeout_ms": timeout,
            "queue_depth": self.queue_depth,
            "num_workers": self.num_workers,
            "priority_weights": weights,
            "default_priority": self.default_priority
            or (DEFAULT_PRIORITY if DEFAULT_PRIORITY in weights else next(iter(weights))),
        }
        if adaptive is not None:
            knobs["adaptive"] = adaptive
        self._recorder = TraceRecorder(
            self.trace_dir,
            role="scheduler",
            meta={
                "model": self.module.graph.name,
                "target": self.module.cpu.name,
                "knobs": knobs,
            },
        )
        return self._recorder

    def _comparable_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        """Normalize a shape to the engine's leading-extent convention.

        This is the single place the convention lives: on a batch-stackable
        graph the leading extent is a free batch dim, so it is dropped —
        requests match (and coalesce) on their *per-sample* shape.  On a
        non-batchable graph every extent is load-bearing and the full shape
        is kept, so callers comparing against :attr:`input_signature` or the
        scheduler's compatibility key never mistake the frozen batch for a
        free one.
        """
        return tuple(shape[1:]) if self.batchable else tuple(shape)

    @property
    def input_signature(self) -> Dict[str, Tuple[Tuple[Optional[int], ...], str]]:
        """Expected request shapes: input name -> ((extents...), dtype).

        For a batch-stackable graph the leading extent is reported as
        ``None`` (any batch extent is accepted); for a non-batchable graph
        the exact declared shape is reported, frozen batch included.
        """
        signature: Dict[str, Tuple[Tuple[Optional[int], ...], str]] = {}
        for name, spec in self._input_specs.items():
            shape = self._comparable_shape(spec.concrete_shape)
            if self.batchable:
                shape = (None,) + shape
            signature[name] = (shape, spec.dtype.name)
        return signature

    def _request_signature(self, inputs: Mapping[str, object]) -> Tuple:
        """Batching compatibility key: per-sample shapes and dtypes.

        The leading (batch) extent is excluded for batchable graphs (see
        :meth:`_comparable_shape`), so a 2-sample request can share an
        executor pass with 1-sample requests — they concatenate along the
        same axis.
        """
        items = []
        for name in sorted(inputs):
            value = inputs[name]
            shape = tuple(np.shape(value.data if isinstance(value, Tensor) else value))
            dtype = getattr(value, "dtype", None)
            if dtype is None:
                dtype = np.asarray(value).dtype
            items.append((name, self._comparable_shape(shape), str(dtype)))
        return tuple(items)

    def _coerce(self, name: str, value) -> np.ndarray:
        """A request input as the plain array the executor would see."""
        if isinstance(value, Tensor):
            return value.data
        spec = self._input_specs.get(name)
        dtype = spec.dtype.name if spec is not None else None
        return np.asarray(value, dtype=dtype)

    def _execute_group(
        self, requests: List[Mapping[str, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Runner for the scheduler: one executor pass per coalesced group.

        A single request goes straight to the executor.  A group is stacked
        along the batch axis into reusable staging buffers, executed once,
        and the outputs are split back per request — each request receives
        an owned copy so no response aliases the shared batch output.
        """
        if len(requests) == 1:
            return [self._executor.run(requests[0])]

        anchor = next(iter(self._input_specs))
        counts = [
            int(np.shape(self._coerce(anchor, request[anchor]))[0])
            for request in requests
        ]
        total = sum(counts)
        stacked: dict = {}
        staged: List[np.ndarray] = []
        try:
            for name in self._input_specs:
                arrays = [self._coerce(name, request[name]) for request in requests]
                buffer = self._buffers.acquire(
                    (total,) + tuple(arrays[0].shape[1:]), arrays[0].dtype
                )
                staged.append(buffer)
                np.concatenate(arrays, axis=0, out=buffer)
                stacked[name] = buffer
            outputs = self._executor.run(stacked)
            for out in outputs:
                if np.shape(out)[0] != total:
                    raise RuntimeError(
                        f"batched output has leading extent {np.shape(out)[0]}, "
                        f"expected {total}; graph is not batch-stackable"
                    )
            results: List[List[np.ndarray]] = []
            offset = 0
            for count in counts:
                # .copy(), not a view: responses must not alias each other or
                # the staging buffers (released to the pool below), and one
                # request's response must not pin the whole batch output.
                results.append(
                    [out[offset : offset + count].copy() for out in outputs]
                )
                offset += count
            return results
        finally:
            for buffer in staged:
                self._buffers.release(buffer)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    @property
    def requests_served(self) -> int:
        """Total number of inference requests this engine has completed."""
        return self.stats().completed

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> List[np.ndarray]:
        """Serve one request: input-name -> array mapping, outputs as a list.

        Args:
            inputs: the request.
            timeout_ms: optional deadline; raises
                :class:`~repro.api.DeadlineExceeded` when the request cannot
                be dispatched in time.
            priority: request class (``"interactive"``/``"normal"``/
                ``"bulk"`` by default); latency-sensitive classes are
                dispatched ahead of bulk by their weighted-fair share.
        """
        return self.scheduler.run(inputs, timeout_ms=timeout_ms, priority=priority)

    def run_single(self, **inputs: np.ndarray) -> np.ndarray:
        """Convenience wrapper returning the first output only."""
        return self.run(inputs)[0]

    def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ):
        """Enqueue one request without blocking; returns its future.

        The asynchronous face of :meth:`run` (what the serving daemon's
        workers use): the future resolves to the request's output list, or
        to the original worker exception tagged with ``request_index``.
        """
        return self.scheduler.submit(inputs, timeout_ms=timeout_ms, priority=priority)

    def run_batch(
        self,
        requests: Sequence[Mapping[str, np.ndarray]],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> List[List[np.ndarray]]:
        """Serve a request sequence; results in request order.

        The whole sequence is submitted up front, so shape-compatible
        requests coalesce into stacked executor passes.  A failing request
        re-raises its original worker exception with ``request_index`` set to
        its position in ``requests``.
        """
        return self._collect(
            self.scheduler.submit_all(requests, timeout_ms=timeout_ms, priority=priority)
        )

    def serve_concurrent(
        self,
        requests: Sequence[Mapping[str, np.ndarray]],
        max_workers: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> List[List[np.ndarray]]:
        """Serve many requests concurrently through the scheduler.

        Results are returned in request order and are byte-identical to
        sequential :meth:`run` calls (the kernels are batch-invariant).

        Args:
            requests: the request stream.
            max_workers: worker-pool sizing hint kept from the PR 2
                signature.  Honored only when the scheduler has not started
                yet (its pool is sized once, at creation); afterwards the
                existing pool is used and the hint is ignored.
            timeout_ms: optional per-request deadline.
            priority: request class shared by the whole stream.
        """
        if max_workers is not None and self._scheduler is None:
            with self._scheduler_lock:
                if self._scheduler is None:
                    self.num_workers = max(1, int(max_workers))
        if not requests:
            return []
        return self.run_batch(requests, timeout_ms=timeout_ms, priority=priority)

    @staticmethod
    def _collect(futures) -> List[List[np.ndarray]]:
        results = []
        for position, future in enumerate(futures):
            try:
                results.append(future.result())  # repro: noqa[REP011] -- scheduler close() resolves every accepted future, so this wait is bounded by scheduler teardown
            except Exception as error:
                # Attribute the failure to its position in this call's
                # request list (the scheduler tagged the engine-global
                # submission index; the position is what the caller can use).
                raise _attach_index(error, position)
        return results

    def stats(self) -> SchedulerStats:
        """Scheduler counters: queued/completed/batched/deadline_misses/...

        Returns zeroed stats when no request was ever submitted (the
        scheduler is created lazily).
        """
        if self._scheduler is None:
            return SchedulerStats()
        return self._scheduler.stats()

    def add_close_hook(self, hook) -> None:
        """Run ``hook()`` when the engine closes (releasing artifact pins,
        unregistering from a repository, ...).  Hooks fire exactly once, in
        registration order, even if ``close`` is called repeatedly."""
        self._close_hooks.append(hook)

    def close(self, wait: bool = True) -> None:
        """Drain and shut down the scheduler (no-op if never used)."""
        try:
            if self._scheduler is not None:
                self._scheduler.close(wait=wait)
        finally:
            # The trace recorder closes after the scheduler drained so the
            # final done/exec_end events land in the last segment.
            if self._recorder is not None:
                self._recorder.close()
            # Hooks release artifact pins: they must fire even if scheduler
            # shutdown raises, or the pinned file is GC-exempt forever.
            # The test-and-set is atomic under _close_lock so concurrent
            # close() calls cannot both claim the hooks (a double fire is a
            # double pin release, making the artifact GC-eligible while a
            # sibling engine still holds it).  Hooks themselves run outside
            # the lock: they do file I/O (pin release), which must not block
            # other closers.
            with self._close_lock:
                fire = not self._close_hooks_fired
                self._close_hooks_fired = True
            if fire:
                for hook in self._close_hooks:
                    hook()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def profile(
        self,
        num_threads: Optional[int] = None,
    ) -> LatencyReport:
        """Per-operator latency breakdown of the served module."""
        return self.module.profile(num_threads)

    def estimate_latency_ms(self, num_threads: Optional[int] = None) -> float:
        """Estimated per-request latency of the served module (ms)."""
        return self.module.estimate_latency_ms(num_threads)

    def describe(self) -> str:
        """Serving-relevant facts: batchability (with the reason when off),
        the expected input signature and the scheduler knobs."""
        lines = [
            f"InferenceEngine({self.module.graph.name} on {self.module.cpu.name})",
            "  dynamic batching: "
            + (
                f"on (free leading batch extent, max_batch_size={self.max_batch_size})"
                if self.batchable
                else f"off — {self.batchability_reason}"
            ),
            "  inputs:",
        ]
        for name, (shape, dtype) in sorted(self.input_signature.items()):
            rendered = ", ".join("N" if d is None else str(d) for d in shape)
            lines.append(f"    {name}: ({rendered}) {dtype}")
        if isinstance(self.batch_timeout_ms, (int, float)):
            timeout = f"{self.batch_timeout_ms:g}"
        else:  # "auto" or an AdaptiveTimeout instance
            timeout = str(self.batch_timeout_ms)
            if self._scheduler is not None and self._scheduler.adaptive_timeout:
                timeout += (
                    f" (currently "
                    f"{self._scheduler.adaptive_timeout.window_ms:.2f}ms)"
                )
        with self._scheduler_lock:
            num_workers = self.num_workers
            queue_depth = self.queue_depth
        lines.append(
            f"  scheduler: batch_timeout_ms={timeout}, "
            f"queue_depth={queue_depth}, num_workers={num_workers}"
        )
        if self.trace_dir is not None:
            lines.append(f"  tracing: {self.trace_dir}")
        stats = self.stats()
        if stats.completed:
            latency = stats.latency_ms
            wait = stats.queue_wait_ms
            lines.append(
                f"  latency ms p50/p95/p99: {latency.get('p50', 0.0):.2f} / "
                f"{latency.get('p95', 0.0):.2f} / {latency.get('p99', 0.0):.2f} "
                f"(queue wait p99 {wait.get('p99', 0.0):.2f})"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        stats = self.stats()
        lines = [
            f"InferenceEngine({self.module.graph.name} on {self.module.cpu.name})",
            f"  requests served: {stats.completed}",
            f"  dynamic batching: "
            + (
                f"on (max_batch_size={self.max_batch_size}, "
                f"mean batch {stats.mean_batch_size:.2f})"
                if self.batchable
                else f"off ({self.batchability_reason})"
            ),
        ]
        return "\n".join(lines) + "\n" + self.module.summary()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InferenceEngine(model={self.module.graph.name!r}, "
            f"target={self.module.cpu.name!r}, served={self.stats().completed})"
        )

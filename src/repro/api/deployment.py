"""Multi-target deployment: bundles, host-matched loading, model repository.

The paper's claim is cross-CPU: ahead-of-time tuning beats framework
baselines on Intel Skylake, AMD EPYC *and* ARM Cortex-A72.  Serving a fleet
of mixed hosts therefore should not mean one tuning session per host.  This
module is the deployment surface that makes one build serve every host:

* :func:`build` compiles a model for several CPU targets in one session —
  the targets share one tuning database, and the per-target searches run in
  parallel worker *processes* (each core-bound search gets its own
  interpreter, so tuning three presets costs about one) — and emits a single
  ``.neocpu`` bundle: one manifest, one payload per target, plus the
  uncompiled source graph for hosts nothing was compiled for.
* :func:`load_engine` opens a bundle on the machine that will serve it and
  picks the right payload for the running host: exact host-fingerprint match
  first, then the best ISA/cache-compatibility score
  (:func:`repro.hardware.compatibility_score`), and — when no payload can
  run on this host — a transparent recompile from the embedded source graph.
  It never serves a payload the host cannot execute.
* :class:`ModelRepository` is the management view over a cache directory:
  list/inspect/verify the artifact manifests and garbage-collect the cache
  down to a byte budget, evicting least-recently-used artifacts while never
  touching one pinned by a live engine.  ``python -m repro.cli`` is the
  command-line face of this class.

:class:`~repro.api.Optimizer`'s single-target ``compile`` is a thin wrapper
over the same build path (:func:`compile_for_target`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.compiler import compile_graph
from ..core.config import CompileConfig
from ..core.tuning_db import TuningDatabase, TuningDatabaseMigrationError
from ..graph.graph import Graph
from ..hardware.cpu import CPUSpec
from ..hardware.presets import (
    compatibility_score,
    cpu_from_summary,
    detect_host,
    get_target,
    host_fingerprint,
    rank_targets,
)
from ..models.zoo import get_model
from ..runtime.artifact import (
    ArtifactError,
    bundle_fingerprint,
    compilation_fingerprint,
    graph_fingerprint,
    live_pin_owners,
    load_member,
    load_source,
    manifest_targets,
    params_fingerprint,
    read_manifest,
    remove_pin_file,
    save_bundle,
    sweep_stale_pin_files,
    verify_artifact,
    write_pin_file,
)
from ..runtime.module import CompiledModule
from .engine import InferenceEngine

__all__ = [
    "ArtifactBundle",
    "GCReport",
    "ModelRepository",
    "build",
    "compile_for_target",
    "load_engine",
    "module_fingerprint",
    "pinned_artifacts",
    "cross_pinned_artifacts",
]

ModelLike = Union[str, Graph]
TargetLike = Union[str, CPUSpec]

#: Layout of a cache directory (shared with :class:`~repro.api.Optimizer`
#: and the benchmark harness): the persisted tuning database and the
#: compiled-artifact store.
TUNING_DB_FILENAME = "tuning_db.json"
MODULE_CACHE_DIRNAME = "modules"
ARTIFACT_SUFFIX = ".neocpu"


# --------------------------------------------------------------------------- #
# pin registry: artifacts held open by live engines are GC-exempt
# --------------------------------------------------------------------------- #
_PIN_LOCK = threading.Lock()
_PINS: Dict[str, int] = {}


def _pin_key(path: "str | Path") -> str:
    path = Path(path)
    try:
        return str(path.resolve())
    except OSError:  # pragma: no cover - unresolvable path: fall back verbatim
        return str(path)


def pin_artifact(path: "str | Path") -> None:
    """Mark an artifact as in use; :meth:`ModelRepository.gc` will not evict it."""
    key = _pin_key(path)
    with _PIN_LOCK:
        _PINS[key] = _PINS.get(key, 0) + 1


def release_artifact(path: "str | Path") -> None:
    """Drop one pin; the artifact becomes evictable when no pins remain."""
    key = _pin_key(path)
    with _PIN_LOCK:
        count = _PINS.get(key, 0) - 1
        if count > 0:
            _PINS[key] = count
        else:
            _PINS.pop(key, None)


def pinned_artifacts() -> "set[str]":
    """Resolved paths of every artifact currently pinned by a live engine."""
    with _PIN_LOCK:
        return set(_PINS)


# Cross-process pins: on top of the in-process registry above, the *first*
# pin a process takes on an artifact also publishes a ``<artifact>.pin.<pid>``
# file next to it (see :mod:`repro.runtime.artifact`), and the last release
# removes it.  A ``repro.cli gc`` running in a *different* process checks
# those pin files — validated for owner liveness — before every unlink, so
# repository GC is safe to run unattended beside a live worker fleet.  The
# per-process refcount below exists because pin files are per (artifact,
# pid): two engines in one process must not drop the shared pin file when
# the first of them closes.
_CROSS_LOCK = threading.Lock()
_CROSS_PINS: Dict[str, int] = {}


def _acquire_cross_pin(path: "str | Path") -> None:
    key = _pin_key(path)
    with _CROSS_LOCK:
        count = _CROSS_PINS.get(key, 0) + 1
        _CROSS_PINS[key] = count
        if count == 1:
            # The pin file must appear while the lock is held: the refcount
            # transition 0->1 and the file's existence are one atomic fact,
            # or a racing release in another thread could observe count==1
            # with no file yet and remove a pin it never saw.
            write_pin_file(path)  # repro: noqa[REP004] -- pin count and pin file must transition together


def _release_cross_pin(path: "str | Path") -> None:
    key = _pin_key(path)
    with _CROSS_LOCK:
        count = _CROSS_PINS.get(key, 0) - 1
        if count > 0:
            _CROSS_PINS[key] = count
        else:
            _CROSS_PINS.pop(key, None)
            # Same atomicity argument as _acquire_cross_pin, in reverse.
            remove_pin_file(path)  # repro: noqa[REP004] -- pin count and pin file must transition together


def cross_pinned_artifacts() -> "set[str]":
    """Resolved paths this *process* is currently cross-process-pinning."""
    with _CROSS_LOCK:
        return set(_CROSS_PINS)


def _unlink_unless_pinned(path: Path) -> str:
    """Atomically (w.r.t. the pin registry) delete an unpinned artifact.

    The membership check and the unlink happen under the registry lock, so a
    concurrent :func:`load_engine` either pinned first (the file survives)
    or pins after the unlink (its load starts on an already-deleted file and
    fails cleanly) — there is no window where a load that pinned in time
    loses its file mid-read.  The same contract holds across processes via
    pin files: a loader elsewhere renames its pin into place *before* its
    first read, so a pin that exists when this check runs keeps the file;
    a loader that pins after the unlink fails cleanly on the missing file.
    Returns ``"pinned"``, ``"evicted"`` or ``"missing"`` (someone else
    deleted it first).
    """
    with _PIN_LOCK:
        if _pin_key(path) in _PINS:
            return "pinned"
        if live_pin_owners(path):
            # Pinned by another process (a serving daemon's worker, a
            # concurrent load): the pin file's owner is alive, so the
            # artifact is in use even though this process never pinned it.
            return "pinned"
        try:
            # The unlink must happen under _PIN_LOCK: the pin-check and
            # the delete are one atomic decision (see docstring above).
            path.unlink()  # repro: noqa[REP004] -- atomicity requires the unlink under the pin lock
        except FileNotFoundError:
            return "missing"
    return "evicted"


# --------------------------------------------------------------------------- #
# fingerprints and the single-target compile path
# --------------------------------------------------------------------------- #
def module_fingerprint(
    cpu: CPUSpec,
    config: CompileConfig,
    graph: Graph,
    params: Optional[Mapping[str, np.ndarray]] = None,
) -> str:
    """The compilation fingerprint a module for ``graph`` would carry.

    Combines the (target, config) fingerprint with the structural hash of
    the source graph and the digest of explicitly-bound parameters; any
    change to any of them invalidates cached artifacts.
    """
    base = compilation_fingerprint(cpu, config)
    return f"{base[:32]}{graph_fingerprint(graph)[:16]}{params_fingerprint(params)[:16]}"


def load_tuning_database(cache_dir: "str | Path") -> TuningDatabase:
    """Load the tuning database persisted in ``cache_dir``.

    Returns an empty database when none was persisted yet, or when the
    persisted file uses an unmigratable schema (stale caches regenerate;
    they are never allowed to poison a session).
    """
    path = Path(cache_dir).expanduser() / TUNING_DB_FILENAME
    if not path.exists():
        return TuningDatabase()
    try:
        return TuningDatabase.load(path)
    except (TuningDatabaseMigrationError, OSError, ValueError, KeyError):
        return TuningDatabase()


def artifact_path_for(cache_dir: "str | Path", model_name: str, fingerprint: str) -> Path:
    """Canonical artifact path for (model, fingerprint) inside a cache dir."""
    safe_name = "".join(c if c.isalnum() or c in "-_." else "_" for c in model_name)
    return (
        Path(cache_dir).expanduser()
        / MODULE_CACHE_DIRNAME
        / f"{safe_name}-{fingerprint[:16]}{ARTIFACT_SUFFIX}"
    )


def compile_for_target(
    graph: Graph,
    cpu: CPUSpec,
    *,
    config: Optional[CompileConfig] = None,
    params: Optional[Mapping[str, np.ndarray]] = None,
    database: Optional[TuningDatabase] = None,
    cache_dir: Optional["str | Path"] = None,
    in_place: bool = False,
    force: bool = False,
    owns_graph: bool = False,
) -> CompiledModule:
    """Compile ``graph`` for one target, through the artifact cache.

    This is the single-target leg of the deployment build path, and what
    :meth:`repro.api.Optimizer.compile` wraps: fingerprint the inputs, serve
    a fresh cached artifact when one exists, otherwise run the pipeline and
    persist the result (plus the tuning database) for the next session.

    Args:
        graph: the model graph (compiled from a copy unless ``in_place``).
        cpu: the CPU target.
        config: compilation options (full NeoCPU pipeline by default).
        params: concrete parameter values to bind before compilation.
        database: tuning database to consult/extend.
        cache_dir: durable cache directory; omit for a purely in-memory
            compile.
        in_place: optimize the given graph directly (bypasses the artifact
            cache: serving a cached artifact would break the promise that
            *this* object is mutated).
        force: skip the artifact cache and recompile even on a hit.
        owns_graph: the caller built ``graph`` solely for this call (e.g.
            from a zoo name), so the defensive copy would protect an object
            nobody else can see.
    """
    cfg = config if config is not None else CompileConfig()
    fingerprint = module_fingerprint(cpu, cfg, graph, params)
    path = (
        artifact_path_for(cache_dir, graph.name, fingerprint)
        if cache_dir is not None
        else None
    )

    # in_place promises "mutate *this* graph object": serving a cached
    # artifact instead would keep the promise on cold runs and break it on
    # warm runs, so the cache is bypassed for in-place compiles.
    if path is not None and path.exists() and not force and not in_place:
        try:
            module = CompiledModule.load(path, expected_fingerprint=fingerprint)
            _touch(path)
            return module
        except ArtifactError:
            pass  # stale or corrupt artifact: fall through and recompile

    module = compile_graph(
        graph,
        cpu,
        config=cfg,
        params=params,
        tuning_database=database,
        in_place=in_place or owns_graph,
    )
    module.fingerprint = fingerprint
    if path is not None:
        module.save(path, fingerprint=fingerprint)
        if database is not None:
            database.save(Path(cache_dir).expanduser() / TUNING_DB_FILENAME)
    return module


def _touch(path: Path) -> None:
    """Refresh an artifact's mtime (the repository's LRU clock) on use."""
    try:
        os.utime(path)
    except OSError:  # pragma: no cover - read-only store: LRU degrades to FIFO
        pass


# --------------------------------------------------------------------------- #
# the multi-target build
# --------------------------------------------------------------------------- #
def _build_one_target(
    graph: Graph,
    cpu: CPUSpec,
    config: CompileConfig,
    params: Optional[Mapping[str, np.ndarray]],
    database: TuningDatabase,
) -> Tuple[CompiledModule, TuningDatabase]:
    """Compile ``graph`` for one target (tuning-worker entry point).

    Top-level (not nested) so a spawn-started worker process can import it;
    returns the database so records tuned in a worker flow back to the
    parent's shared database.
    """
    module = compile_graph(
        graph, cpu, config=config, params=params, tuning_database=database
    )
    return module, database


def _build_one_target_trapped(graph, cpu, config, params, database):
    """Pool wrapper around :func:`_build_one_target` that *returns* compile
    failures instead of raising them, so the parent can tell a genuine
    compile error (re-raise it — a serial retry would fail identically)
    apart from pool infrastructure trouble (fall back to the serial path)."""
    try:
        return ("ok", _build_one_target(graph, cpu, config, params, database))
    except Exception as error:
        return ("error", error)


def _compile_targets(
    graph: Graph,
    cpus: Sequence[CPUSpec],
    config: CompileConfig,
    params: Optional[Mapping[str, np.ndarray]],
    database: TuningDatabase,
    jobs: Optional[int],
) -> List[CompiledModule]:
    """Compile ``graph`` for every target, sharing ``database``.

    With more than one target and more than one job the per-target compiles
    run in worker *processes* (the candidate scoring is numpy-bound but the
    search bookkeeping is Python, so processes — unlike the thread-pool
    ``tune_all`` inside one target — let several presets tune concurrently).
    Each worker receives only its own target's slice of the tuning database
    and returns its new records, which are merged back so the shared
    database (and the persisted ``tuning_db.json``) ends up identical to a
    serial build.  Any process-pool failure (no fork support, unpicklable
    custom measurer state, a sandbox without semaphores) falls back to the
    serial path — the build then merely takes longer.
    """
    if jobs is None:
        jobs = min(len(cpus), os.cpu_count() or 1)
    if jobs > 1 and len(cpus) > 1:
        # Import failures (a platform without multiprocessing) and pool
        # failures share the same answer: fall back to the serial path.  The
        # imports sit in their own try so every name in the pool-failure
        # tuple below is guaranteed bound.
        pool_errors: Optional[tuple] = None
        try:
            import multiprocessing
            import pickle
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            pool_errors = (
                OSError,
                ValueError,
                EOFError,
                BrokenPipeError,
                BrokenProcessPool,  # a worker died (OOM kill, hard crash)
                pickle.PicklingError,  # unpicklable graph/config state
            )
        except ImportError:
            pass
        results = None
        try:
            if pool_errors is None:
                raise OSError("multiprocessing unavailable on this platform")
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(cpus)), mp_context=context
            ) as pool:
                futures = [
                    pool.submit(
                        _build_one_target_trapped,
                        graph,
                        cpu,
                        config,
                        params,
                        database.subset(cpu.name),
                    )
                    for cpu in cpus
                ]
                results = [future.result() for future in futures]
        except pool_errors or (OSError,) as error:
            import warnings

            warnings.warn(
                f"process-parallel bundle build unavailable ({error}); "
                f"falling back to a serial build",
                RuntimeWarning,
                stacklevel=3,
            )
        if results is not None:
            # Outside the except scope on purpose: a worker's *compile*
            # error (trapped and returned by _build_one_target_trapped) is
            # re-raised as-is — a serial retry would fail identically, and
            # it must not be misread as pool trouble.
            for status, value in results:
                if status == "error":
                    raise value
            modules = []
            for _, (module, worker_database) in results:
                database.merge(worker_database)
                modules.append(module)
            return modules
    return [
        _build_one_target(graph, cpu, config, params, database)[0] for cpu in cpus
    ]


def resolve_targets(targets: Sequence[TargetLike]) -> List[CPUSpec]:
    """Resolve target aliases/specs, deduplicating by canonical name."""
    if isinstance(targets, (str, CPUSpec)):
        targets = [targets]
    cpus: List[CPUSpec] = []
    seen = set()
    for target in targets:
        cpu = target if isinstance(target, CPUSpec) else get_target(target)
        if cpu.name not in seen:
            seen.add(cpu.name)
            cpus.append(cpu)
    if not cpus:
        raise ValueError("build needs at least one target")
    return cpus


def build(
    model: ModelLike,
    targets: Sequence[TargetLike],
    params: Optional[Mapping[str, np.ndarray]] = None,
    config: Optional[CompileConfig] = None,
    cache_dir: Optional["str | Path"] = None,
    output: Optional["str | Path"] = None,
    database: Optional[TuningDatabase] = None,
    jobs: Optional[int] = None,
    force: bool = False,
) -> "ArtifactBundle":
    """Compile ``model`` for several CPU targets into one deployable bundle.

    One tuning session covers every target: the targets share a tuning
    database (persisted under ``cache_dir``), and with multiple targets the
    per-target searches run in parallel worker processes.  The resulting
    ``.neocpu`` file carries one payload per target plus the uncompiled
    source graph, so :func:`load_engine` can serve *any* host — matched,
    compatible, or recompiled.

    A rebuild with unchanged inputs is a pure cache hit: the bundle file is
    keyed by the per-target compilation fingerprints, so a warm repository
    answers without a single search-measurer call.

    Args:
        model: a model-zoo name (``"resnet-50"``) or a :class:`Graph` (never
            mutated).
        targets: CPU targets (preset aliases or :class:`CPUSpec`) to compile
            for; duplicates (after alias resolution) collapse.
        params: concrete parameter values to bind before compilation.
        config: compilation options shared by every target.
        cache_dir: repository directory — holds the bundle, the persisted
            tuning database, and any single-target artifacts.  One of
            ``cache_dir``/``output`` is required.
        output: explicit bundle file path (overrides the repository layout).
        database: share an existing in-memory tuning database.
        jobs: tuning worker processes (default: one per target, capped at
            the machine's core count; ``1`` forces the serial in-process
            path).
        force: rebuild even when a fresh bundle exists.

    Returns:
        The built (or cache-hit) :class:`ArtifactBundle`.
    """
    if cache_dir is None and output is None:
        raise ValueError("build needs a cache_dir (repository) or an output path")
    from_zoo = isinstance(model, str)
    graph = get_model(model) if from_zoo else model
    cpus = resolve_targets(targets)
    cfg = config if config is not None else CompileConfig()
    if database is None:
        database = (
            load_tuning_database(cache_dir) if cache_dir is not None else TuningDatabase()
        )

    fingerprints = [module_fingerprint(cpu, cfg, graph, params) for cpu in cpus]
    if output is not None:
        path = Path(output).expanduser()
    else:
        path = artifact_path_for(
            cache_dir, graph.name, bundle_fingerprint(fingerprints)
        )

    if path.exists() and not force:
        try:
            bundle = ArtifactBundle.load(path)
            recorded = {
                (entry["target"], entry["fingerprint"]) for entry in bundle.entries()
            }
            if recorded == set(zip((cpu.name for cpu in cpus), fingerprints)):
                _touch(path)
                return bundle
        except ArtifactError:
            pass  # corrupt or foreign file under the bundle name: rebuild it

    modules = _compile_targets(graph, cpus, cfg, params, database, jobs)
    for module, fingerprint in zip(modules, fingerprints):
        module.fingerprint = fingerprint
    source = {
        "graph": graph if from_zoo else graph.copy(),
        "params": dict(params) if params else None,
        "config": cfg,
    }
    save_bundle(list(zip(modules, fingerprints)), path, source=source)
    if cache_dir is not None:
        database.save(Path(cache_dir).expanduser() / TUNING_DB_FILENAME)
    return ArtifactBundle.load(path)


# --------------------------------------------------------------------------- #
# the bundle view and host-matched engine loading
# --------------------------------------------------------------------------- #
class ArtifactBundle:
    """A read view over one ``.neocpu`` artifact (single- or multi-target)."""

    def __init__(self, path: "str | Path", manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    @classmethod
    def load(cls, path: "str | Path") -> "ArtifactBundle":
        """Open an artifact by path (manifest only; no payload is read)."""
        return cls(path, read_manifest(path))

    # -- manifest accessors ------------------------------------------------ #
    @property
    def model(self) -> str:
        return str(self.manifest.get("model", "?"))

    @property
    def targets(self) -> List[str]:
        return [entry["target"] for entry in self.entries()]

    def entries(self) -> List[dict]:
        """Per-target manifest entries (normalized across format versions)."""
        return manifest_targets(self.manifest)

    @property
    def has_source(self) -> bool:
        """Does the bundle embed the uncompiled source graph for recompiles?"""
        return int(self.manifest.get("source_bytes") or 0) > 0

    def size_bytes(self) -> int:
        return self.path.stat().st_size

    # -- payload access ---------------------------------------------------- #
    def load_module(
        self,
        target: Optional[str] = None,
        expected_fingerprint: Optional[str] = None,
    ) -> CompiledModule:
        """Load one member module (see :func:`repro.runtime.load_member`)."""
        return load_member(
            self.path, target=target, expected_fingerprint=expected_fingerprint
        )

    def load_source(self) -> Optional[dict]:
        """The embedded recompilation payload, or ``None``."""
        return load_source(self.path)

    def verify(self, deep: bool = False) -> List[str]:
        """Integrity problems of the underlying file (empty list = intact)."""
        return verify_artifact(self.path, deep=deep)

    # -- host matching ----------------------------------------------------- #
    def _entry_cpu(self, entry: dict) -> Optional[CPUSpec]:
        summary = entry.get("cpu")
        if summary:
            return cpu_from_summary(summary)
        # v1 manifests recorded only the target name; presets resolve their
        # own full names, anything else cannot be scored from the manifest.
        try:
            return get_target(entry["target"])
        except (KeyError, TypeError):
            return None

    def select(self, host: CPUSpec) -> Tuple[Optional[dict], str]:
        """Choose the payload to serve on ``host``.

        Returns ``(entry, reason)`` where ``reason`` is ``"fingerprint"``
        (exact host match), ``"compatible:<score>"`` (best positive
        ISA/cache-compatibility score), or ``(None, "none")`` when no
        payload may run on this host.
        """
        entries = self.entries()
        fingerprint = host_fingerprint(host)
        for entry in entries:
            if entry.get("host_fingerprint") == fingerprint:
                return entry, "fingerprint"
        # Scoreable candidates, ranked by the shared compatibility policy
        # (target names are unique within a bundle, so they key the entries).
        entry_by_name: Dict[str, dict] = {}
        cpus: List[CPUSpec] = []
        for entry in entries:
            cpu = self._entry_cpu(entry)
            if cpu is not None and cpu.name not in entry_by_name:
                entry_by_name[cpu.name] = entry
                cpus.append(cpu)
        if cpus:
            score, best = rank_targets(host, cpus)[0]
            if score > 0.0:
                return entry_by_name[best.name], f"compatible:{score:.3f}"
        return None, "none"

    def describe(self) -> str:
        """Human-readable manifest summary (what ``repro.cli inspect`` prints)."""
        manifest = self.manifest
        lines = [
            f"{self.path}",
            f"  model            : {self.model}",
            f"  artifact version : {manifest.get('artifact_version')}",
            f"  size             : {self.size_bytes():,} bytes"
            if self.path.exists()
            else "  size             : (missing)",
            f"  source payload   : "
            + ("embedded (host-recompilable)" if self.has_source else "none"),
            f"  targets ({len(self.entries())}):",
        ]
        for entry in self.entries():
            fingerprint = str(entry.get("fingerprint") or "?")
            # Both ends: the head digests (target, config), the tail digests
            # (graph, params) — so neither two models on one target nor one
            # model on two targets render alike.
            rendered = (
                f"{fingerprint[:8]}..{fingerprint[-8:]}"
                if len(fingerprint) > 18
                else fingerprint
            )
            lines.append(
                f"    {entry['target']:<28s} search={entry.get('search_method', '?'):<8s}"
                f" schedules={entry.get('num_schedules', '?'):<3} "
                f"fingerprint={rendered}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ArtifactBundle(model={self.model!r}, targets={self.targets}, "
            f"path={str(self.path)!r})"
        )


def load_engine(
    path: "str | Path",
    host: Optional[TargetLike] = None,
    params: Optional[Mapping[str, np.ndarray]] = None,
    seed: int = 0,
    database: Optional[TuningDatabase] = None,
    **engine_kwargs,
) -> InferenceEngine:
    """Open an artifact and serve it on the running host — never mis-served.

    Payload selection (see :meth:`ArtifactBundle.select`): exact host
    fingerprint, else the best positive ISA/cache-compatibility score, else
    a transparent recompile from the bundle's embedded source graph.  After
    unpickling, the chosen payload's *actual* target is re-checked against
    the host — a manifest that lies about its payload is recompiled or
    refused, not served.

    Args:
        path: artifact file (v1 single-target files and v2 bundles).
        host: the serving CPU (preset alias or :class:`CPUSpec`); defaults
            to :func:`repro.hardware.detect_host` (honoring the
            ``REPRO_HOST_TARGET`` environment variable).
        params: parameter values to bind at engine creation.
        seed: RNG seed for parameters without explicit values.
        database: tuning database for the recompile path; defaults to the
            repository's persisted database when the artifact lives in one.
        engine_kwargs: forwarded to :class:`InferenceEngine` (scheduler
            knobs such as ``max_batch_size`` and ``batch_timeout_ms``).

    Returns:
        A live :class:`InferenceEngine`; ``engine.host_match`` records how
        the payload was chosen and ``engine.artifact_path`` pins the file
        against repository GC until ``engine.close()``.

    Raises:
        ArtifactError: when the file is corrupt, or when no payload fits the
            host and the bundle carries no source graph to recompile from.
    """
    if host is None:
        host = detect_host()
    elif isinstance(host, str):
        host = get_target(host)
    path = Path(path)
    # Pin before the first read: a concurrent repository GC sweep must see
    # this artifact as in-use for the whole load, not just once an engine
    # holds it — otherwise an over-budget sweep could unlink the file
    # between the manifest read and the payload read.  The cross-process pin
    # file goes down equally early so a GC sweep in *another* process obeys
    # the same contract.
    pin_artifact(path)
    try:
        _acquire_cross_pin(path)
    except BaseException:
        release_artifact(path)
        raise
    try:
        bundle = ArtifactBundle.load(path)
        entry, reason = bundle.select(host)
        module: Optional[CompiledModule] = None
        if entry is not None:
            module = bundle.load_module(target=entry["target"])
            if compatibility_score(host, module.cpu) <= 0.0:
                # The manifest promised a compatible payload but the
                # unpickled module targets something the host cannot
                # execute: fall through to the recompile path rather than
                # mis-serve.
                module, reason = None, "none"
        if module is None:
            source = bundle.load_source()
            if source is None:
                raise ArtifactError(
                    f"{path} has no payload compatible with host {host.name!r} "
                    f"(targets: {bundle.targets}) and embeds no source graph to "
                    f"recompile from; rebuild the bundle with this host among "
                    f"its targets"
                )
            # Transparent recompile for this host, warmed by (and warming)
            # the repository's tuning database when the artifact lives in one.
            repo_dir: Optional[Path] = None
            if database is None and path.parent.name == MODULE_CACHE_DIRNAME:
                repo_dir = path.parent.parent
                database = load_tuning_database(repo_dir)
            module = compile_graph(
                source["graph"],
                host,
                config=source.get("config"),
                params=source.get("params"),
                tuning_database=database,
                in_place=True,  # the unpickled source graph is owned outright
            )
            if repo_dir is not None and database is not None:
                database.save(repo_dir / TUNING_DB_FILENAME)
            reason = "recompiled"

        engine = InferenceEngine(module, params=params, seed=seed, **engine_kwargs)
    except BaseException:
        _release_cross_pin(path)
        release_artifact(path)
        raise
    engine.artifact_path = path
    engine.host_match = reason
    engine.served_target = module.cpu.name

    def _release_pins() -> None:
        _release_cross_pin(path)
        release_artifact(path)

    engine.add_close_hook(_release_pins)
    _touch(path)
    return engine


# --------------------------------------------------------------------------- #
# the model repository (what repro.cli operates on)
# --------------------------------------------------------------------------- #
@dataclass
class ArtifactInfo:
    """One repository entry: the file plus its manifest (or why it has none)."""

    path: Path
    size_bytes: int
    mtime: float
    manifest: Optional[dict] = None
    error: Optional[str] = None

    @property
    def model(self) -> str:
        return str(self.manifest.get("model", "?")) if self.manifest else "?"

    @property
    def targets(self) -> List[str]:
        if not self.manifest:
            return []
        try:
            return [entry["target"] for entry in manifest_targets(self.manifest)]
        except ArtifactError:
            return []


@dataclass
class GCReport:
    """What one :meth:`ModelRepository.gc` sweep did (or would do)."""

    max_bytes: int
    total_bytes_before: int = 0
    total_bytes_after: int = 0
    evicted: List[Path] = field(default_factory=list)
    kept: List[Path] = field(default_factory=list)
    pinned: List[Path] = field(default_factory=list)
    stale_pins_removed: List[Path] = field(default_factory=list)
    dry_run: bool = False

    @property
    def freed_bytes(self) -> int:
        return self.total_bytes_before - self.total_bytes_after

    @property
    def over_budget(self) -> bool:
        """Still above budget after the sweep (everything left is pinned)."""
        return self.total_bytes_after > self.max_bytes

    def describe(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        lines = [
            f"repository gc: budget {self.max_bytes:,} bytes, "
            f"{self.total_bytes_before:,} -> {self.total_bytes_after:,} bytes "
            f"({verb} {len(self.evicted)}, kept {len(self.kept)}, "
            f"pinned {len(self.pinned)})",
        ]
        for path in self.evicted:
            lines.append(f"  {verb}: {path.name}")
        for path in self.pinned:
            lines.append(f"  pinned (in use): {path.name}")
        for path in self.stale_pins_removed:
            lines.append(f"  stale pin swept (owner gone): {path.name}")
        if self.over_budget:
            lines.append(
                "  still over budget: every remaining artifact is pinned by a "
                "live engine"
            )
        return "\n".join(lines)


class ModelRepository:
    """Inspect and manage the artifact store under a cache directory.

    The repository is the durable half of a deployment: ``modules/*.neocpu``
    artifacts (single-target and bundles, all self-describing via their
    manifests) plus the shared ``tuning_db.json``.  It offers the four
    operations a serving fleet needs — list, inspect, verify, and
    size-budgeted garbage collection — and is what ``python -m repro.cli``
    wraps.

    Eviction is least-recently-*used*: every artifact load (engine open,
    cache hit, rebuild hit) refreshes the file's mtime, and :meth:`gc`
    deletes oldest-first until the store fits ``max_bytes`` — skipping
    artifacts pinned by live engines in this process (see
    :func:`pin_artifact`) or any other (``<artifact>.pin.<pid>`` files with
    a live owner) and in-progress ``.tmp-*`` writes.  Deletion is whole-file
    ``unlink``, so a
    concurrent reader either sees an intact artifact or none at all, never a
    truncated one.
    """

    TUNING_DB_FILENAME = TUNING_DB_FILENAME
    MODULE_CACHE_DIRNAME = MODULE_CACHE_DIRNAME
    ARTIFACT_SUFFIX = ARTIFACT_SUFFIX

    def __init__(self, cache_dir: "str | Path") -> None:
        self.root = Path(cache_dir).expanduser()
        self.modules_dir = self.root / MODULE_CACHE_DIRNAME

    # -- enumeration ------------------------------------------------------- #
    def artifact_paths(self) -> List[Path]:
        """Every artifact file in the store (in-progress writes excluded)."""
        if not self.modules_dir.is_dir():
            return []
        return sorted(
            path
            for path in self.modules_dir.iterdir()
            if path.is_file()
            and path.name.endswith(ARTIFACT_SUFFIX)
            and ".tmp-" not in path.name
        )

    def artifacts(self) -> List[ArtifactInfo]:
        """Repository inventory, most recently used first."""
        infos: List[ArtifactInfo] = []
        for path in self.artifact_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue  # raced with a concurrent GC/eviction
            info = ArtifactInfo(path, stat.st_size, stat.st_mtime)
            try:
                info.manifest = read_manifest(path)
            except (ArtifactError, OSError) as error:
                info.error = str(error)
            infos.append(info)
        infos.sort(key=lambda info: info.mtime, reverse=True)
        return infos

    def total_bytes(self) -> int:
        total = 0
        for path in self.artifact_paths():
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                pass
        return total

    def resolve(self, name_or_path: "str | Path") -> Path:
        """An artifact path from a repository-relative name or a real path."""
        candidate = Path(name_or_path).expanduser()
        if candidate.exists():
            return candidate
        for suffix in ("", ARTIFACT_SUFFIX):
            inside = self.modules_dir / f"{name_or_path}{suffix}"
            if inside.exists():
                return inside
        raise FileNotFoundError(
            f"no artifact {str(name_or_path)!r} (looked in {self.modules_dir})"
        )

    # -- operations -------------------------------------------------------- #
    def open(self, name_or_path: "str | Path") -> ArtifactBundle:
        return ArtifactBundle.load(self.resolve(name_or_path))

    def verify(self, name_or_path: "str | Path", deep: bool = False) -> List[str]:
        return verify_artifact(self.resolve(name_or_path), deep=deep)

    def verify_all(self, deep: bool = False) -> Dict[Path, List[str]]:
        """Problems per artifact (only artifacts with problems appear)."""
        report: Dict[Path, List[str]] = {}
        for path in self.artifact_paths():
            problems = verify_artifact(path, deep=deep)
            if problems:
                report[path] = problems
        return report

    def tuning_database(self) -> TuningDatabase:
        return load_tuning_database(self.root)

    def gc(self, max_bytes: int, dry_run: bool = False) -> GCReport:
        """Evict least-recently-used artifacts until the store fits the budget.

        Artifacts pinned by live engines are never deleted, even if the
        budget cannot be met without them (the report's ``over_budget`` flag
        says so).  Safe to run concurrently with engine loads in this
        process *and in others*: :func:`load_engine` pins before its first
        read (in-process registry plus a ``<artifact>.pin.<pid>`` file other
        processes can see), pins are checked per file immediately before its
        unlink, and a file that vanishes underneath the sweep (a racing GC)
        is simply skipped.  Pin files whose owning process has died are
        swept first — a crashed worker cannot exempt an artifact forever —
        while a live owner's pin file is never touched by anyone but that
        owner.

        Args:
            max_bytes: byte budget for ``modules/``; must be >= 0.
            dry_run: report what would be evicted without deleting (stale
                pin files are still swept — they are bookkeeping for dead
                processes, not artifacts).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        # stat() only: eviction needs size, age and pin state — parsing the
        # manifests (what artifacts() does for the inventory views) would be
        # one file read per artifact per sweep of pure waste.
        entries = []
        for path in self.artifact_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue  # raced with a concurrent GC/eviction
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        report = GCReport(max_bytes=max_bytes, dry_run=dry_run)
        if self.modules_dir.is_dir():
            report.stale_pins_removed = sweep_stale_pin_files(self.modules_dir)
        total = sum(size for _, size, _ in entries)
        report.total_bytes_before = total
        for _, size, path in entries:
            if total <= max_bytes:
                report.kept.append(path)
                continue
            if dry_run:
                if _pin_key(path) in pinned_artifacts() or live_pin_owners(path):
                    report.pinned.append(path)
                else:
                    total -= size
                    report.evicted.append(path)
                continue
            outcome = _unlink_unless_pinned(path)
            if outcome == "pinned":
                report.pinned.append(path)
            elif outcome == "missing":
                total -= size  # someone else freed it for us
            else:
                total -= size
                report.evicted.append(path)
        report.total_bytes_after = total
        return report

    def describe(self) -> str:
        """Inventory table (what ``repro.cli list`` prints)."""
        infos = self.artifacts()
        lines = [
            f"repository {self.root} — {len(infos)} artifact(s), "
            f"{self.total_bytes():,} bytes"
        ]
        for info in infos:
            if info.error is not None:
                lines.append(f"  {info.path.name:<48s} UNREADABLE: {info.error}")
                continue
            targets = ",".join(info.targets)
            lines.append(
                f"  {info.path.name:<48s} {info.model:<16s} "
                f"{info.size_bytes:>10,} B  targets={targets}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ModelRepository(root={str(self.root)!r})"

"""Dynamic-batching request scheduler for the serving surface.

PR 2's ``serve_concurrent`` was a bare thread-pool map: every request ran
alone, requests never shared an executor pass, a slow queue meant a silent
hang, and a worker exception lost track of which request caused it.  This
module is the real scheduler the ROADMAP called for:

* a **bounded request queue** (:class:`~repro.runtime.threadpool.BoundedQueue`)
  — submitters block when the queue is at ``queue_depth``, which is the
  backpressure that keeps a burst from growing tail latency without bound;
* **per-request deadlines** — a request that cannot be served before its
  deadline fails fast with :class:`DeadlineExceeded` instead of hanging, and
  an expired request is dropped *before* execution so it never wastes
  executor time or poisons the requests behind it;
* **dynamic batching** — the collector thread coalesces consecutive
  shape-compatible requests (up to ``max_batch_size``, waiting at most
  ``batch_timeout_ms`` for stragglers) into one executor pass over the
  stacked batch.  Per-request :class:`~concurrent.futures.Future` objects
  keep response order and error attribution exact: each caller observes only
  its own result or its own exception (tagged with ``request_index``);
* **priority classes** — every request belongs to a class
  (``"interactive"``, ``"normal"`` or ``"bulk"`` by default; the ``priority=``
  knob on :meth:`RequestScheduler.submit` and every engine entry point), and
  the queue is a :class:`~repro.runtime.threadpool.WeightedFairQueue`:
  dispatch order across classes follows the configured weights (stride
  scheduling — latency-sensitive traffic overtakes bulk backfill by its
  weight ratio but can never starve it), while order *within* a class stays
  strictly FIFO and batches never mix classes.

The scheduler is deliberately engine-agnostic: it schedules *requests* and
delegates execution to a ``runner`` callable that maps a list of compatible
request inputs to a list of per-request outputs.
:class:`~repro.api.engine.InferenceEngine` supplies a runner that stacks the
inputs along the batch axis and splits the outputs back — see
``InferenceEngine._execute_group``.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..runtime.threadpool import WeightedFairQueue

__all__ = [
    "AdaptiveTimeout",
    "DEFAULT_PRIORITY",
    "DEFAULT_PRIORITY_WEIGHTS",
    "DeadlineExceeded",
    "LatencyReservoir",
    "RequestScheduler",
    "SchedulerStats",
    "request_signature",
]

#: Default request classes and their weighted-fair service weights: a
#: backlogged scheduler serves interactive traffic 8x as often as bulk (and
#: 2x as often as normal), but every class always drains (stride scheduling
#: is starvation-free).
DEFAULT_PRIORITY_WEIGHTS = {"interactive": 8.0, "normal": 4.0, "bulk": 1.0}

#: The class a request lands in when ``priority=`` is not given.
DEFAULT_PRIORITY = "normal"


class AdaptiveTimeout:
    """Derive the batching window from the observed request arrival rate.

    ``RequestScheduler(batch_timeout_ms="auto")`` uses one of these instead
    of a fixed window.  The policy: the window should be just long enough to
    catch the next few requests of the *current* traffic, never a fixed
    guess about it.

    * The mean inter-arrival gap is tracked as an EWMA over
      :meth:`observe` calls (one per accepted request).
    * Dense traffic — the window is ``multiplier`` inter-arrival gaps
      (enough to coalesce a handful of stragglers), floored at ``min_ms`` so
      timer granularity never collapses it to a busy-poll.
    * Sparse traffic — when even ``multiplier`` gaps exceed ``max_ms``, no
      straggler worth waiting for can arrive inside any acceptable window,
      so the window drops to ``min_ms`` instead of taxing every request with
      ``max_ms`` of hopeless waiting.
    * Before any rate is observed the window is ``initial_ms`` (the fixed
      default a non-adaptive scheduler uses).

    Thread-safe: arrivals are observed and the EWMA state read under one
    lock (the collector reads the window while submitters observe arrivals;
    REP006 flagged the original lock-free reads).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        multiplier: float = 3.0,
        min_ms: float = 0.2,
        max_ms: float = 20.0,
        initial_ms: float = 2.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if multiplier <= 0 or min_ms < 0 or max_ms < min_ms or initial_ms < 0:
            raise ValueError("invalid adaptive-timeout bounds")
        self.alpha = alpha
        self.multiplier = multiplier
        self.min_s = min_ms / 1e3
        self.max_s = max_ms / 1e3
        self.initial_s = initial_ms / 1e3
        self._lock = threading.Lock()
        self._last_arrival: Optional[float] = None
        self._ewma_gap_s: Optional[float] = None

    def observe(self, now: float) -> None:
        """Record one request arrival at monotonic time ``now`` (seconds)."""
        with self._lock:
            last = self._last_arrival
            self._last_arrival = now
            if last is None:
                return
            gap = max(0.0, now - last)
            if self._ewma_gap_s is None:
                self._ewma_gap_s = gap
            else:
                self._ewma_gap_s += self.alpha * (gap - self._ewma_gap_s)

    @property
    def interarrival_s(self) -> Optional[float]:
        """The current EWMA inter-arrival gap (None until two arrivals)."""
        with self._lock:
            return self._ewma_gap_s

    @property
    def window_s(self) -> float:
        """The coalescing window the collector should use right now."""
        with self._lock:
            gap = self._ewma_gap_s
        if gap is None:
            return self.initial_s
        proposed = self.multiplier * gap
        if proposed > self.max_s:
            return self.min_s  # arrivals too sparse: waiting cannot coalesce
        return max(self.min_s, proposed)

    @property
    def window_ms(self) -> float:
        return self.window_s * 1e3

    def __repr__(self) -> str:  # pragma: no cover - trivial
        gap = self.interarrival_s
        observed = "unobserved" if gap is None else f"gap={gap * 1e3:.3f}ms"
        return f"AdaptiveTimeout(window={self.window_ms:.3f}ms, {observed})"


class DeadlineExceeded(TimeoutError):
    """A request missed its deadline before it could be served.

    Raised (via the request's future) when the request expired while queued,
    or when the bounded queue stayed full past the deadline.  The request is
    discarded without executing; requests behind it are unaffected.
    """


def request_signature(inputs: Mapping[str, object]) -> Tuple:
    """Default batching signature: input names with full shapes and dtypes.

    Two requests may share one executor pass only if their signatures are
    equal.  The engine overrides this with a batch-axis-insensitive variant
    (shape minus the leading extent) for graphs that can be stacked.
    """
    items = []
    for name in sorted(inputs):
        value = inputs[name]
        dtype = getattr(value, "dtype", None)
        if dtype is None:
            value = np.asarray(value)
            dtype = value.dtype
        items.append((name, tuple(np.shape(value)), str(dtype)))
    return tuple(items)


class LatencyReservoir:
    """A bounded uniform sample of latency observations (Algorithm R).

    Percentiles over an unbounded stream need either the full stream or a
    sketch; a fixed-size uniform reservoir is the simplest sketch whose
    quantiles are unbiased.  Capacity is small (a few thousand floats), so a
    long-running daemon's stats stay O(1) in memory no matter how many
    requests it served.  The replacement RNG is seeded: two schedulers fed
    the same stream report the same percentiles (REP001 — no unseeded
    randomness in anything a test asserts on).

    Not thread-safe by itself; the scheduler observes under its stats lock.
    """

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0

    def observe(self, value_s: float) -> None:
        """Add one observation (seconds)."""
        self._count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value_s)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.capacity:
                self._samples[slot] = value_s

    def __len__(self) -> int:
        return self._count

    def percentiles_ms(self) -> Dict[str, float]:
        """``{"p50", "p95", "p99", "mean"}`` in milliseconds (zeros when
        nothing was observed yet)."""
        if not self._samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}
        array = np.sort(np.asarray(self._samples, dtype=np.float64)) * 1e3
        return {
            "p50": float(np.percentile(array, 50)),
            "p95": float(np.percentile(array, 95)),
            "p99": float(np.percentile(array, 99)),
            "mean": float(np.mean(array)),
        }


@dataclass
class SchedulerStats:
    """Counters exposed through :meth:`RequestScheduler.stats`.

    ``queued`` counts every accepted request; each of them ends up in exactly
    one of ``completed``, ``failed`` or ``deadline_misses``.  ``batches`` and
    ``batched`` describe coalescing quality: ``batched`` is the number of
    requests that shared an executor pass with at least one other request,
    and ``mean_batch_size`` is requests-per-executor-pass (1.0 means the
    scheduler never managed to coalesce anything).

    ``queue_wait_ms`` and ``latency_ms`` are percentile summaries
    (p50/p95/p99/mean) from bounded reservoirs: queue wait is submission to
    executor start, latency is submission to completion (successful requests
    only).
    """

    queued: int = 0
    completed: int = 0
    failed: int = 0
    deadline_misses: int = 0
    batched: int = 0
    batches: int = 0
    executed: int = 0
    max_batch_size: int = 0
    #: requests handed to the runner, per priority class (coalescing quality
    #: and fairness are judged per class).
    executed_by_priority: Dict[str, int] = field(default_factory=dict)
    #: submission -> executor-start percentiles, ms (p50/p95/p99/mean).
    queue_wait_ms: Dict[str, float] = field(default_factory=dict)
    #: submission -> completion percentiles, ms (p50/p95/p99/mean).
    latency_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        """Requests accepted but not yet resolved."""
        return self.queued - self.completed - self.failed - self.deadline_misses

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per executor dispatch."""
        return self.executed / self.batches if self.batches else 0.0


class _Request:
    __slots__ = (
        "inputs",
        "future",
        "deadline",
        "index",
        "signature",
        "priority",
        "arrival",
    )

    def __init__(
        self, inputs, future, deadline, index, signature, priority, arrival
    ) -> None:
        self.inputs = inputs
        self.future = future
        self.deadline = deadline
        self.index = index
        self.signature = signature
        self.priority = priority
        self.arrival = arrival  # monotonic submit time: queue-wait/latency base


def _attach_index(error: BaseException, index: int) -> BaseException:
    """Tag an exception with the index of the request that raised it."""
    try:
        error.request_index = index
    except AttributeError:  # exceptions with __slots__: degrade gracefully
        pass
    return error


class RequestScheduler:
    """Queue, deadline-check and dynamically batch inference requests.

    Args:
        runner: executes one coalesced group — takes a list of
            signature-compatible request input mappings, returns one output
            list per request, in order.  Called from scheduler worker
            threads; it must be thread-safe.
        max_batch_size: largest number of requests coalesced into one runner
            call.  1 disables batching (requests still get queueing and
            deadlines).
        batch_timeout_ms: how long the collector waits for additional
            compatible requests before dispatching a partial batch.  The
            latency cost of batching is bounded by this knob.  Pass
            ``"auto"`` (or an :class:`AdaptiveTimeout`) to derive the window
            from the observed inter-arrival rate instead of fixing it.
        queue_depth: bound of the request queue; submitters block (up to
            their deadline) while the queue is full.
        num_workers: worker threads executing dispatched batches.  Two by
            default so a batch can execute while the collector gathers the
            next one.
        priority_weights: request classes and their weighted-fair service
            weights (:data:`DEFAULT_PRIORITY_WEIGHTS` when omitted).  The
            class set is fixed at construction; ``submit(priority=...)``
            must name one of them.
        default_priority: the class of requests submitted without an
            explicit ``priority=`` (must be a ``priority_weights`` key).
        name: thread-name prefix, for debuggability of stress-test dumps.
        recorder: optional :class:`repro.trace.TraceRecorder` — when given,
            the scheduler records the full per-request event stream
            (arrival/enqueue/dequeue/exec_start/exec_end/done) for
            trace-driven replay.  None (the default) records nothing and
            costs nothing.
        reservoir_size: capacity of the queue-wait and latency percentile
            reservoirs reported by :meth:`stats`.
    """

    def __init__(
        self,
        runner: Callable[[List[Mapping[str, np.ndarray]]], List[List[np.ndarray]]],
        *,
        max_batch_size: int = 8,
        batch_timeout_ms: "float | str | AdaptiveTimeout" = 2.0,
        queue_depth: int = 256,
        num_workers: int = 2,
        priority_weights: Optional[Mapping[str, float]] = None,
        default_priority: Optional[str] = None,
        signature: Callable[[Mapping[str, object]], Tuple] = request_signature,
        name: str = "neocpu-scheduler",
        recorder: Optional["object"] = None,
        reservoir_size: int = 2048,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._runner = runner
        self.max_batch_size = max_batch_size
        weights = dict(
            DEFAULT_PRIORITY_WEIGHTS if priority_weights is None else priority_weights
        )
        if default_priority is None:
            default_priority = (
                DEFAULT_PRIORITY if DEFAULT_PRIORITY in weights else next(iter(weights))
            )
        if default_priority not in weights:
            raise ValueError(
                f"default_priority {default_priority!r} is not a declared "
                f"request class (declared: {sorted(weights)})"
            )
        self.priority_weights = weights
        self.default_priority = default_priority
        self.adaptive_timeout: Optional[AdaptiveTimeout] = None
        self._fixed_timeout_s = 0.0
        if isinstance(batch_timeout_ms, AdaptiveTimeout):
            self.adaptive_timeout = batch_timeout_ms
        elif isinstance(batch_timeout_ms, str):
            if batch_timeout_ms != "auto":
                raise ValueError(
                    f"batch_timeout_ms must be a number or 'auto', "
                    f"got {batch_timeout_ms!r}"
                )
            self.adaptive_timeout = AdaptiveTimeout()
        else:
            if batch_timeout_ms < 0:
                raise ValueError("batch_timeout_ms must be >= 0")
            self._fixed_timeout_s = batch_timeout_ms / 1e3
        self.queue_depth = queue_depth
        self._signature = signature
        self._queue = WeightedFairQueue(queue_depth, weights)
        self._stats = SchedulerStats()
        self._stats_lock = threading.Lock()
        self._counter = itertools.count()
        self._batch_counter = itertools.count()
        self._wait_reservoir = LatencyReservoir(reservoir_size)
        self._latency_reservoir = LatencyReservoir(reservoir_size)
        self._recorder = recorder
        if recorder is not None:
            from ..trace.recorder import signature_hash  # deferred: no cycle

            self._signature_hash = signature_hash
        self._closed = False
        self._workers = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix=f"{name}-worker"
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name=f"{name}-collector", daemon=True
        )
        self._collector.start()

    @property
    def batch_timeout_s(self) -> float:
        """The collector's current coalescing window, in seconds.

        A fixed constant normally; under ``batch_timeout_ms="auto"`` it
        tracks the observed arrival rate (see :class:`AdaptiveTimeout`), so
        consecutive reads may differ.
        """
        if self.adaptive_timeout is not None:
            return self.adaptive_timeout.window_s
        return self._fixed_timeout_s

    # ------------------------------------------------------------------ #
    # submission side
    # ------------------------------------------------------------------ #
    def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> "Future[List[np.ndarray]]":
        """Enqueue one request; resolve its future when served.

        Args:
            inputs: input-name -> array mapping, as for ``InferenceEngine.run``.
            timeout_ms: per-request deadline.  When the request cannot be
                *dispatched for execution* within this budget (queue full, or
                still queued past the deadline), the future fails with
                :class:`DeadlineExceeded`.  An already-executing request is
                not interrupted.
            priority: request class (a ``priority_weights`` key —
                ``"interactive"``/``"normal"``/``"bulk"`` by default;
                ``default_priority`` when omitted).  Classes are served
                weighted-fair: latency-sensitive traffic overtakes bulk by
                its weight ratio, bulk is never starved.

        Returns:
            A future resolving to the request's output list.  Failures carry
            the original worker exception, tagged with ``request_index``.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if priority is None:
            priority = self.default_priority
        elif priority not in self.priority_weights:
            raise ValueError(
                f"unknown priority {priority!r} "
                f"(declared: {sorted(self.priority_weights)})"
            )
        future: "Future[List[np.ndarray]]" = Future()
        now = time.monotonic()
        if self.adaptive_timeout is not None:
            self.adaptive_timeout.observe(now)
        deadline = now + timeout_ms / 1e3 if timeout_ms is not None else None
        request = _Request(
            inputs,
            future,
            deadline,
            next(self._counter),
            self._signature(inputs),
            priority,
            now,
        )
        with self._stats_lock:
            self._stats.queued += 1
        if self._recorder is not None:
            self._recorder.record_at(
                "arrival",
                now,
                req=request.index,
                pri=priority,
                sig=self._signature_hash(request.signature),
                deadline_ms=timeout_ms,
            )
        queue_timeout = None if deadline is None else max(0.0, deadline - now)
        if not self._queue.put(request, priority, timeout=queue_timeout):
            if self._queue.closed:
                self._resolve_error(
                    request, RuntimeError("scheduler closed while request queued")
                )
            else:
                self._resolve_deadline(request, "request queue stayed full")
        elif self._recorder is not None:
            self._recorder.record("enqueue", req=request.index)
        return future

    def submit_all(
        self,
        requests: Sequence[Mapping[str, np.ndarray]],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> List["Future[List[np.ndarray]]"]:
        """Enqueue a request stream; one future per request, in order."""
        return [
            self.submit(request, timeout_ms=timeout_ms, priority=priority)
            for request in requests
        ]

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> List[np.ndarray]:
        """Submit one request and block for its outputs."""
        return self.submit(inputs, timeout_ms=timeout_ms, priority=priority).result()  # repro: noqa[REP011] -- the collector resolves every accepted future (timeout_ms bounds queue wait; close() fails leftovers)

    def stats(self) -> SchedulerStats:
        """A consistent snapshot of the scheduler counters."""
        with self._stats_lock:
            snapshot = replace(self._stats)
            # replace() copies shallowly: snapshot the per-class dict too, or
            # the caller's "snapshot" keeps mutating under later dispatches.
            snapshot.executed_by_priority = dict(self._stats.executed_by_priority)
            snapshot.queue_wait_ms = self._wait_reservoir.percentiles_ms()
            snapshot.latency_ms = self._latency_reservoir.percentiles_ms()
            return snapshot

    # ------------------------------------------------------------------ #
    # collector / execution side
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        while True:
            # Blocking get: close() wakes the wait, so an idle scheduler
            # parks here without polling.  The weighted-fair queue picks the
            # next request class by stride order; within the class, FIFO.
            request, _ = self._queue.get()  # repro: noqa[REP011] -- close() enqueues a wake-up sentinel; an idle collector parks here by design
            if request is None:
                if self._queue.closed and not len(self._queue):
                    return
                continue
            if self._recorder is not None:
                self._recorder.record("dequeue", req=request.index)
            batch = [request]
            # Gather only when more requests are already queued: a lone
            # synchronous caller must not pay batch_timeout_ms of latency
            # waiting for stragglers that cannot arrive (the caller is
            # blocked on this very request).
            if self.max_batch_size > 1 and len(self._queue) > 0:
                self._gather(batch)
            try:
                self._workers.submit(self._execute_batch, batch)
            except RuntimeError as error:  # executor shut down under us
                for queued in batch:
                    self._resolve_error(queued, error)

    def _gather(self, batch: List[_Request]) -> None:
        """Coalesce consecutive compatible requests into ``batch``.

        Per-class strict FIFO: only the head of the *batch's own class* is
        ever considered, so an incompatible request never overtakes (or is
        overtaken by) the batch being formed within its class, and a batch
        never mixes priority classes — bulk backfill cannot ride along in
        (and thereby delay) an interactive dispatch.
        """
        signature = batch[0].signature
        wait_until = time.monotonic() + self.batch_timeout_s
        while len(batch) < self.max_batch_size:
            remaining = wait_until - time.monotonic()
            request, status = self._queue.pop_matching(
                batch[0].priority,
                lambda r: r.signature == signature,
                timeout=max(0.0, remaining),
            )
            if request is not None:
                if self._recorder is not None:
                    self._recorder.record("dequeue", req=request.index)
                batch.append(request)
                continue
            if status == "mismatch" or remaining <= 0 or self._closed:
                return

    def _execute_batch(self, batch: List[_Request]) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self._resolve_deadline(request, "request expired while queued")
            elif request.future.set_running_or_notify_cancel():
                live.append(request)
            else:  # caller cancelled the future while it was queued
                with self._stats_lock:
                    self._stats.failed += 1
        if not live:
            return
        self._count_dispatch(live, now)
        batch_id = next(self._batch_counter)
        if self._recorder is not None:
            self._recorder.record(
                "exec_start",
                batch=batch_id,
                reqs=[request.index for request in live],
                pri=live[0].priority,
            )
        try:
            outputs = self._runner([request.inputs for request in live])
            if len(outputs) != len(live):
                raise RuntimeError(
                    f"runner returned {len(outputs)} results for {len(live)} requests"
                )
        except BaseException as error:
            if self._recorder is not None:
                self._recorder.record("exec_end", batch=batch_id, ok=False)
            # BaseException, not Exception: a KeyboardInterrupt/SystemExit
            # raised into a worker must still resolve the futures, or every
            # caller blocked on result() hangs forever.
            if not isinstance(error, Exception):
                for request in live:
                    self._resolve_error(request, error)
                raise
            if len(live) == 1:
                self._resolve_error(live[0], error)
            else:
                # One request of the batch is bad (wrong input name, shape
                # drift, NaN guard, ...), but a coalesced execution cannot
                # say which.  Re-run each request alone: the offender fails
                # with its own exception and index, the rest complete.
                for request in live:
                    self._execute_single(request)
        else:
            if self._recorder is not None:
                self._recorder.record("exec_end", batch=batch_id, ok=True)
            for request, out in zip(live, outputs):
                self._resolve_ok(request, out)

    def _count_dispatch(self, live: List[_Request], now: float) -> None:
        """Account one runner dispatch of ``live`` in the stats."""
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.executed += len(live)
            self._stats.max_batch_size = max(self._stats.max_batch_size, len(live))
            if len(live) > 1:
                self._stats.batched += len(live)
            for request in live:
                self._stats.executed_by_priority[request.priority] = (
                    self._stats.executed_by_priority.get(request.priority, 0)
                    + 1
                )
                self._wait_reservoir.observe(max(0.0, now - request.arrival))

    def _execute_single(self, request: _Request) -> None:
        # A serial re-run after a batch failure is a real runner dispatch:
        # count it, or ``executed``/``mean_batch_size`` under-report actual
        # runner calls (the failed batch counted once, then N re-runs ran
        # invisibly).
        self._count_dispatch([request], time.monotonic())
        batch_id = next(self._batch_counter)
        if self._recorder is not None:
            self._recorder.record(
                "exec_start", batch=batch_id, reqs=[request.index], pri=request.priority
            )
        try:
            outputs = self._runner([request.inputs])
        except BaseException as error:
            if self._recorder is not None:
                self._recorder.record("exec_end", batch=batch_id, ok=False)
            self._resolve_error(request, error)
            if not isinstance(error, Exception):
                raise
        else:
            if self._recorder is not None:
                self._recorder.record("exec_end", batch=batch_id, ok=True)
            self._resolve_ok(request, outputs[0])

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #
    def _resolve_ok(self, request: _Request, outputs: List[np.ndarray]) -> None:
        now = time.monotonic()
        with self._stats_lock:
            self._stats.completed += 1
            self._latency_reservoir.observe(max(0.0, now - request.arrival))
        if self._recorder is not None:
            self._recorder.record_at("done", now, req=request.index, status="ok")
        try:
            request.future.set_result(outputs)
        except InvalidStateError:  # pragma: no cover - cancelled mid-flight
            pass

    def _resolve_error(self, request: _Request, error: BaseException) -> None:
        with self._stats_lock:
            self._stats.failed += 1
        if self._recorder is not None:
            self._recorder.record("done", req=request.index, status="error")
        try:
            request.future.set_exception(_attach_index(error, request.index))
        except InvalidStateError:  # pragma: no cover - cancelled mid-flight
            pass

    def _resolve_deadline(self, request: _Request, reason: str) -> None:
        with self._stats_lock:
            self._stats.deadline_misses += 1
        if self._recorder is not None:
            self._recorder.record("done", req=request.index, status="deadline")
        try:
            request.future.set_exception(
                _attach_index(
                    DeadlineExceeded(f"request {request.index}: {reason}"),
                    request.index,
                )
            )
        except InvalidStateError:  # pragma: no cover - cancelled mid-flight
            pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the scheduler down.

        Already-queued requests are still served (the collector drains the
        queue before exiting); with ``wait=True`` the call blocks until every
        in-flight request resolved.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.close()
        if wait:
            self._collector.join(timeout=30.0)
        self._workers.shutdown(wait=wait)

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown path
        try:
            self.close(wait=False)
        except Exception:  # repro: noqa[REP005] -- interpreter teardown: modules may be half-gone, nowhere to report
            pass

    def __repr__(self) -> str:  # pragma: no cover - trivial
        stats = self.stats()
        return (
            f"RequestScheduler(max_batch_size={self.max_batch_size}, "
            f"batch_timeout_ms={self.batch_timeout_s * 1e3:g}, "
            f"queue_depth={self.queue_depth}, queued={stats.queued}, "
            f"mean_batch={stats.mean_batch_size:.2f})"
        )

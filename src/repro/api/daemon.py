"""The serving daemon: a socket front-end over :class:`EngineDispatcher`.

``python -m repro.cli serve --artifact model.neocpu --workers 2`` starts a
:class:`ServingDaemon`: a TCP listener whose connections feed requests into
the multi-process dispatcher (see :mod:`repro.api.dispatch`) and stream
replies back as workers finish them.  :class:`DaemonClient` is the matching
client — ``submit``/``run`` with the same priority classes the in-process
scheduler takes, and byte-identical outputs.

Wire protocol
-------------

Length-prefixed pickle frames: 8 bytes big-endian payload length, then the
pickled message.  Requests are ``{"id", "inputs", "priority", "timeout_ms"}``
dicts; replies are ``{"id", "outputs"}`` or ``{"id", "error"}`` (the error
is the worker's exception instance, re-raised client-side).  Replies are
out of order — priority scheduling reorders requests by design — so the id
is the correlation key.  Pickle over a socket means the daemon trusts its
clients; it binds loopback by default and is a serving tier, not an
authentication tier.
"""

from __future__ import annotations

import itertools
import pickle
import select
import socket
import struct
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .dispatch import DispatchError, EngineDispatcher
from .scheduler import LatencyReservoir

__all__ = ["ServingDaemon", "DaemonClient"]

_LENGTH = struct.Struct(">Q")

#: Refuse frames above this size instead of allocating attacker-controlled
#: amounts of memory on a garbage length prefix.
MAX_FRAME_BYTES = 1 << 31

#: How often a parked receive loop wakes to re-check its abort signal.
#: Data sockets stay *blocking for sends* — a ``settimeout`` would also bound
#: ``sendall``, and a timeout mid-send tears the length-prefixed framing
#: irrecoverably — so bounded receives poll readability with ``select``
#: instead of a socket-level timeout.
_POLL_INTERVAL_S = 1.0


def _send_frame(sock: socket.socket, message: object) -> None:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(blob)) + blob)


def _recv_exact(
    sock: socket.socket,
    count: int,
    should_abort: Optional[Callable[[], bool]] = None,
) -> Optional[bytes]:
    chunks = []
    while count:
        if should_abort is not None:
            try:
                ready, _, _ = select.select([sock], [], [], _POLL_INTERVAL_S)
            except (ValueError, OSError):
                return None  # socket closed under us: treat as EOF
            if not ready:
                if should_abort():
                    return None
                continue
        try:
            chunk = sock.recv(min(count, 1 << 20))
        except socket.timeout:
            continue  # deadline tick: keep accumulated chunks, retry
        if not chunk:
            return None  # orderly EOF
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(
    sock: socket.socket,
    should_abort: Optional[Callable[[], bool]] = None,
) -> Optional[object]:
    header = _recv_exact(sock, _LENGTH.size, should_abort)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    blob = _recv_exact(sock, length, should_abort)
    if blob is None:
        return None
    return pickle.loads(blob)


class ServingDaemon:
    """Accept request streams on a TCP socket, serve them via worker processes.

    Args:
        artifact_path: the ``.neocpu`` artifact the worker fleet serves.
        num_workers: worker-process count.
        host: bind address; loopback by default (the protocol is pickle).
        port: bind port; 0 picks a free one (read :attr:`address`).
        engine_kwargs: forwarded to every worker's ``load_engine``.
        trace_dir: when given, the whole fleet records into this trace
            directory — the daemon its socket edge (``recv``/
            ``reply_write``), the dispatcher its routing, every worker its
            scheduler stream (see :mod:`repro.trace`).
        stats_interval_s: when given, a background thread logs a one-line
            serving summary (req/s, outstanding, latency percentiles) every
            interval via ``stats_line()`` — a daemon is observable without
            attaching a client.
    """

    def __init__(
        self,
        artifact_path: "str | Path",
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        engine_kwargs: Optional[Mapping[str, object]] = None,
        trace_dir: Optional[str] = None,
        stats_interval_s: Optional[float] = None,
    ) -> None:
        self.dispatcher = EngineDispatcher(
            artifact_path,
            num_workers=num_workers,
            engine_kwargs=engine_kwargs,
            trace_dir=trace_dir,
        )
        self._recorder = None
        if trace_dir is not None:
            from ..trace.recorder import TraceRecorder  # deferred: no cycle

            self._recorder = TraceRecorder(
                trace_dir, role="daemon", meta={"num_workers": int(num_workers)}
            )
        try:
            self._sock = socket.create_server((host, port))
        except BaseException:
            self.dispatcher.close()
            self._close_recorder()
            raise
        try:
            # The listener never sends, so a socket-level timeout is safe
            # here: it turns accept() into a periodic shutdown check.
            self._sock.settimeout(_POLL_INTERVAL_S)
            self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        except BaseException:
            self._sock.close()
            self.dispatcher.close()
            self._close_recorder()
            raise
        try:
            self._lock = threading.Lock()
            self._closed = False
            self._conns: List[socket.socket] = []
            self._threads: List[threading.Thread] = []
            self._accept_thread: Optional[threading.Thread] = None
            self._conn_ids = itertools.count()
            # Parent-side serving stats: worker scheduler counters live in
            # other processes, so the daemon tracks what it can observe end
            # to end — dispatch-submit to reply-callback latency,
            # served/error counts.
            self.stats_interval_s = stats_interval_s
            self._stats_lock = threading.Lock()
            self._served = 0
            self._errored = 0
            self._latency_reservoir = LatencyReservoir()
            self._stats_stop = threading.Event()
            self._stats_thread: Optional[threading.Thread] = None
        except BaseException:
            # The caller never receives the object, so close() is
            # unreachable: release everything acquired so far.
            self._sock.close()
            self.dispatcher.close()
            self._close_recorder()
            raise

    def _close_recorder(self) -> None:
        if self._recorder is not None:
            self._recorder.close()

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> "ServingDaemon":
        """Start accepting connections on a background thread; returns self."""
        thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-serve-accept"
        )
        with self._lock:
            if self._closed:
                raise DispatchError("daemon is closed")
            if self._accept_thread is not None:
                return self
            self._accept_thread = thread
        thread.start()
        self._start_stats_thread()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (what the CLI does)."""
        self._start_stats_thread()
        self._accept_loop()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._sock.accept()
            except socket.timeout:
                # Periodic wake-up: the only way a parked accept loop can
                # observe close() without an inbound connection.
                with self._lock:
                    if self._closed:
                        return
                continue
            except OSError:
                return  # listener closed: shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                daemon=True,
                name="repro-serve-conn",
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
            try:
                thread.start()
            except RuntimeError:
                # Thread limit: shed this connection, keep serving the rest.
                with self._lock:
                    if conn in self._conns:
                        self._conns.remove(conn)
                conn.close()
                continue
            with self._lock:
                self._threads.append(thread)

    # -- observability ------------------------------------------------------ #
    def _start_stats_thread(self) -> None:
        if self.stats_interval_s is None or self.stats_interval_s <= 0:
            return
        thread = threading.Thread(
            target=self._stats_loop,
            args=(float(self.stats_interval_s),),
            daemon=True,
            name="repro-serve-stats",
        )
        with self._lock:
            if self._stats_thread is not None or self._closed:
                return
            self._stats_thread = thread
        thread.start()

    def stats_line(self) -> str:
        """A one-line serving summary (totals, outstanding, percentiles)."""
        with self._stats_lock:
            served = self._served
            errored = self._errored
            percentiles = self._latency_reservoir.percentiles_ms()
        outstanding = self.dispatcher.outstanding()
        return (
            f"served {served} (errors {errored}) | outstanding {outstanding} | "
            f"latency ms p50/p95/p99 {percentiles['p50']:.2f}/"
            f"{percentiles['p95']:.2f}/{percentiles['p99']:.2f}"
        )

    def _stats_loop(self, interval_s: float) -> None:
        """Log :meth:`stats_line` every ``interval_s`` until close()."""
        last_served = 0
        while not self._stats_stop.wait(interval_s):
            with self._stats_lock:
                served = self._served
            rate = (served - last_served) / interval_s
            last_served = served
            print(f"[serve] {rate:.1f} req/s | {self.stats_line()}", flush=True)

    # -- per-connection service -------------------------------------------- #
    def _should_abort(self) -> bool:
        with self._lock:
            return self._closed

    def _serve_connection(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()
        conn_id = next(self._conn_ids)

        def _reply(request_id: int, submitted_at: float, future: "Future") -> None:
            error = future.exception()
            if error is not None:
                message = {"id": request_id, "error": error}
            else:
                message = {"id": request_id, "outputs": future.result()}  # repro: noqa[REP011] -- done-callback: the future is already resolved here
            with self._stats_lock:
                if error is None:
                    self._served += 1
                    self._latency_reservoir.observe(
                        max(0.0, time.monotonic() - submitted_at)
                    )
                else:
                    self._errored += 1
            with send_lock:
                try:
                    _send_frame(conn, message)
                except (OSError, ValueError, pickle.PicklingError):
                    conn.close()  # client gone mid-reply: drop the stream
                    return
            if self._recorder is not None:
                self._recorder.record(
                    "reply_write", conn=conn_id, req=request_id, ok=error is None
                )

        try:
            while True:
                try:
                    request = _recv_frame(conn, should_abort=self._should_abort)
                except (OSError, ValueError, pickle.UnpicklingError, EOFError):
                    return  # torn frame or reset: drop the connection
                if request is None:
                    return  # client closed its end
                request_id = request.get("id")
                if self._recorder is not None:
                    self._recorder.record("recv", conn=conn_id, req=request_id)
                submitted_at = time.monotonic()
                try:
                    future = self.dispatcher.submit(
                        request["inputs"],
                        timeout_ms=request.get("timeout_ms"),
                        priority=request.get("priority"),
                    )
                except BaseException as exc:  # reported to the client, not dropped
                    with self._stats_lock:
                        self._errored += 1
                    with send_lock:
                        _send_frame(conn, {"id": request_id, "error": exc})
                    continue
                future.add_done_callback(
                    lambda f, request_id=request_id, submitted_at=submitted_at: _reply(
                        request_id, submitted_at, f
                    )
                )
        finally:
            conn.close()

    # -- teardown ---------------------------------------------------------- #
    def close(self) -> None:
        """Stop accepting, drop client connections, drain the worker fleet."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            accept_thread = self._accept_thread
            stats_thread = self._stats_thread
        self._stats_stop.set()
        self._sock.close()
        for conn in conns:
            conn.close()
        if accept_thread is not None:
            accept_thread.join(5.0)
        if stats_thread is not None:
            stats_thread.join(5.0)
        self.dispatcher.close()
        # After the dispatcher drained: every reply_write has fired.
        self._close_recorder()

    def __enter__(self) -> "ServingDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DaemonClient:
    """Client for :class:`ServingDaemon`: async ``submit``, sync ``run``.

    A background reader thread matches out-of-order replies to their
    futures by request id, so many requests can be in flight on one
    connection — that is how mixed-priority streams are meant to be pushed.
    """

    def __init__(self, host: str, port: int, connect_timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout_s)
        try:
            # Back to blocking: sends must never time out mid-sendall (that
            # would tear the framing); receives are bounded by the reader
            # loop's select-based polling instead.
            self._sock.settimeout(None)
            self._lock = threading.Lock()
            self._inflight: Dict[int, "Future"] = {}
            self._next_id = 0
            self._closed = False
            self._reader = threading.Thread(
                target=self._reader_loop, daemon=True, name="repro-client-reader"
            )
            self._reader.start()
        except BaseException:
            # The caller never receives the object, so close() is
            # unreachable: release the socket here or it leaks.
            self._sock.close()
            raise

    def _should_abort(self) -> bool:
        with self._lock:
            return self._closed

    def _reader_loop(self) -> None:
        while True:
            try:
                message = _recv_frame(self._sock, should_abort=self._should_abort)
            except (OSError, ValueError, pickle.UnpicklingError, EOFError):
                message = None
            if message is None:
                break
            with self._lock:
                future = self._inflight.pop(message["id"], None)
            if future is None:
                continue  # reply for a request we gave up on
            error = message.get("error")
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(message["outputs"])
        with self._lock:
            orphans = list(self._inflight.values())
            self._inflight.clear()
            closed = self._closed
        if not closed:
            for future in orphans:
                future.set_exception(
                    DispatchError("connection to serving daemon lost")
                )

    def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
    ) -> "Future[List[np.ndarray]]":
        """Send one request; the future resolves when its reply arrives."""
        future: "Future[List[np.ndarray]]" = Future()
        with self._lock:
            if self._closed:
                raise DispatchError("client is closed")
            request_id = self._next_id
            self._next_id += 1
            self._inflight[request_id] = future
        message = {
            "id": request_id,
            "inputs": dict(inputs),
            "priority": priority,
            "timeout_ms": timeout_ms,
        }
        try:
            with self._lock:
                _send_frame(self._sock, message)
        except (OSError, ValueError, pickle.PicklingError) as exc:
            with self._lock:
                self._inflight.pop(request_id, None)
            raise DispatchError(f"send to serving daemon failed: {exc}") from exc
        return future

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        result_timeout_s: Optional[float] = 300.0,
    ) -> List[np.ndarray]:
        """Synchronous :meth:`submit`; re-raises worker-side errors here."""
        return self.submit(inputs, timeout_ms=timeout_ms, priority=priority).result(
            timeout=result_timeout_s
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._sock.close()
        self._reader.join(5.0)

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

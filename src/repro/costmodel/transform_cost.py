"""Cost of layout transformations and memory-bound operators.

Layout transforms ("a significant amount of data transformation overhead
needs to be paid to get the desired layout", section 3.1.1) read and write
every element of the tensor once with a permuted access pattern, so they are
pure memory traffic at reduced bandwidth efficiency.  Memory-bound operators
(pooling, batch-norm, activations, element-wise adds) are likewise modelled as
bandwidth-limited streams — unless they are fused into a preceding
compute-intensive operator, in which case they ride along for free (the whole
point of fusion, section 2.2).
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.cpu import CPUSpec
from .parallel import THREAD_POOL, ThreadingModel

__all__ = [
    "layout_transform_time",
    "memory_bound_op_time",
    "elementwise_op_time",
]

#: Permuted copies achieve a lower fraction of stream bandwidth than linear
#: copies because one side of the copy is strided.
_TRANSFORM_BANDWIDTH_EFFICIENCY = 0.45
#: Plain element-wise traversals (relu, bias add) stream well.
_ELEMWISE_BANDWIDTH_EFFICIENCY = 0.75
#: Fixed launch cost of any standalone (non-fused) memory-bound operator.
_OP_LAUNCH_OVERHEAD_S = 0.8e-6


def _parallel_stream_time(
    bytes_moved: float,
    cpu: CPUSpec,
    bandwidth_efficiency: float,
    num_threads: int,
    threading: ThreadingModel,
) -> float:
    """Time to move ``bytes_moved`` with up to ``num_threads`` streams.

    Memory-bound work stops scaling once the socket bandwidth is saturated; a
    handful of cores is enough, which the ``min(threads, 6)`` cap reflects.
    """
    serial = bytes_moved / (cpu.dram_bandwidth_bytes_per_sec * bandwidth_efficiency)
    effective_threads = min(num_threads, 6)
    if effective_threads <= 1:
        return serial + _OP_LAUNCH_OVERHEAD_S
    return (
        threading.parallel_time(serial, effective_threads, num_chunks=64, num_regions=1)
        + _OP_LAUNCH_OVERHEAD_S
    )


def layout_transform_time(
    tensor_bytes: int,
    cpu: CPUSpec,
    num_threads: int = 1,
    threading: ThreadingModel = THREAD_POOL,
) -> float:
    """Time to transform the layout of a tensor of ``tensor_bytes`` bytes."""
    bytes_moved = 2.0 * tensor_bytes  # read once + write once
    return _parallel_stream_time(
        bytes_moved, cpu, _TRANSFORM_BANDWIDTH_EFFICIENCY, num_threads, threading
    )


def memory_bound_op_time(
    input_bytes: Sequence[int],
    output_bytes: int,
    cpu: CPUSpec,
    num_threads: int = 1,
    threading: ThreadingModel = THREAD_POOL,
    reuse_factor: float = 1.0,
) -> float:
    """Time of a standalone memory-bound operator (pooling, BN, softmax...).

    Args:
        input_bytes: bytes read from each input operand.
        output_bytes: bytes written.
        reuse_factor: >1 when the operator touches input elements multiple
            times (e.g. overlapping pooling windows).
    """
    bytes_moved = reuse_factor * float(sum(input_bytes)) + float(output_bytes)
    return _parallel_stream_time(
        bytes_moved, cpu, _ELEMWISE_BANDWIDTH_EFFICIENCY, num_threads, threading
    )


def elementwise_op_time(
    tensor_bytes: int,
    cpu: CPUSpec,
    num_threads: int = 1,
    threading: ThreadingModel = THREAD_POOL,
) -> float:
    """Time of a simple unary element-wise operator over ``tensor_bytes``."""
    return memory_bound_op_time([tensor_bytes], tensor_bytes, cpu, num_threads, threading)

"""Thread-level parallel scaling model.

Section 3.1.2 of the paper replaces OpenMP with a custom thread pool (SPSC
lock-free queues, core pinning, no hyper-threading) because OpenMP's fork/join
overhead per parallel region limits scalability (Figure 4).  The functional
thread pool lives in :mod:`repro.runtime.threadpool`; this module models the
*timing* of both approaches so that the scalability experiment can be
reproduced analytically:

``T_parallel = T_serial / speedup(threads) + n_regions * fork_join_overhead``

where the achievable speedup accounts for load imbalance across the discrete
work chunks of the convolution's outer loop and a per-thread efficiency decay
(memory-bandwidth sharing, scheduling noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ThreadingModel", "THREAD_POOL", "OPENMP", "OPENMP_EIGEN", "OPENMP_OPENBLAS"]


@dataclass(frozen=True)
class ThreadingModel:
    """Parameters of one multi-threading runtime.

    Attributes:
        name: e.g. ``"custom-thread-pool"`` or ``"openmp"``.
        fork_join_overhead_s: time to launch and join one parallel region.
        per_thread_overhead_s: additional launch cost per participating thread
            (thread wake-up, task enqueue).
        efficiency_decay: fractional loss of parallel efficiency per extra
            thread, modelling bandwidth sharing and scheduling jitter; the
            effective speedup of ``t`` threads is
            ``t * (1 - decay)^(t-1)`` before load imbalance.
    """

    name: str
    fork_join_overhead_s: float
    per_thread_overhead_s: float
    efficiency_decay: float

    def effective_speedup(self, num_threads: int, num_chunks: int) -> float:
        """Speedup of a perfectly divisible region with ``num_chunks`` tasks."""
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        usable = min(num_threads, max(1, num_chunks))
        # Load imbalance: with C chunks on T threads the critical path is
        # ceil(C / T) chunks long.
        if num_chunks > 0:
            rounds = math.ceil(num_chunks / usable)
            imbalance = num_chunks / (rounds * usable)
        else:
            imbalance = 1.0
        decay = (1.0 - self.efficiency_decay) ** (usable - 1)
        return max(1.0, usable * imbalance * decay)

    def region_overhead(self, num_threads: int) -> float:
        """Fork/join cost of one parallel region with ``num_threads`` workers."""
        return self.fork_join_overhead_s + self.per_thread_overhead_s * num_threads

    def parallel_time(
        self,
        serial_time_s: float,
        num_threads: int,
        num_chunks: int,
        num_regions: int = 1,
    ) -> float:
        """Wall-clock time of a parallel region under this runtime."""
        if num_threads <= 1:
            return serial_time_s
        return float(
            self.parallel_time_batch(serial_time_s, num_threads, num_chunks, num_regions)
        )

    def parallel_time_batch(
        self,
        serial_times_s: "np.ndarray",
        num_threads: int,
        num_chunks: "np.ndarray",
        num_regions: int = 1,
    ) -> "np.ndarray":
        """Vectorized :meth:`parallel_time` over arrays of regions.

        ``serial_times_s`` and ``num_chunks`` are broadcast together; the
        result matches element-wise calls to :meth:`parallel_time` exactly
        (same formulas evaluated in float64), which is what lets the batched
        local search rank candidates identically to the scalar path.
        """
        serial = np.asarray(serial_times_s, dtype=np.float64)
        chunks = np.asarray(num_chunks, dtype=np.float64)
        if num_threads <= 1:  # serial early-return, like parallel_time
            return np.broadcast_arrays(serial, chunks)[0].copy()
        usable = np.minimum(float(num_threads), np.maximum(1.0, chunks))
        rounds = np.ceil(np.maximum(chunks, 1.0) / usable)
        imbalance = np.where(chunks > 0, chunks / (rounds * usable), 1.0)
        decay = (1.0 - self.efficiency_decay) ** (usable - 1.0)
        speedup = np.maximum(1.0, usable * imbalance * decay)
        return serial / speedup + num_regions * self.region_overhead(num_threads)


#: NeoCPU's custom thread pool: atomics-based fork/join, SPSC queues, pinned
#: threads.  Very low per-region cost and graceful scaling.
THREAD_POOL = ThreadingModel(
    name="custom-thread-pool",
    fork_join_overhead_s=1.5e-6,
    per_thread_overhead_s=0.1e-6,
    efficiency_decay=0.008,
)

#: GCC's OpenMP runtime as configured in the paper (static partitioning,
#: one thread per core): noticeably larger fork/join cost and more jitter.
OPENMP = ThreadingModel(
    name="openmp",
    fork_join_overhead_s=5e-6,
    per_thread_overhead_s=0.3e-6,
    efficiency_decay=0.02,
)

#: Eigen's thread pool (TensorFlow CPU backend): between the two.
OPENMP_EIGEN = ThreadingModel(
    name="eigen-threadpool",
    fork_join_overhead_s=4e-6,
    per_thread_overhead_s=0.25e-6,
    efficiency_decay=0.022,
)

#: OpenBLAS threading (MXNet on ARM): high synchronization cost and poor
#: scaling beyond a handful of cores, which is what makes MXNet scale worst
#: in Figure 4c.
OPENMP_OPENBLAS = ThreadingModel(
    name="openblas-threads",
    fork_join_overhead_s=12e-6,
    per_thread_overhead_s=1.0e-6,
    efficiency_decay=0.05,
)

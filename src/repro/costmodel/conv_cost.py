"""Analytical cost model for direct convolution.

This is the substitution for measuring schedules on real hardware
(DESIGN.md §3): given a :class:`ConvWorkload`, a :class:`ConvSchedule` and a
:class:`CPUSpec` it estimates the execution time of the template of
Algorithm 1.  The model is a classic bottleneck/efficiency decomposition:

``T = max(T_compute / efficiency, T_memory) (+ parallel overheads)``

with the efficiency term assembled from exactly the effects the paper's
schedule tuple controls:

* **vector-lane utilization** — ``oc_bn`` should be a multiple of the SIMD
  lane count, otherwise lanes are wasted;
* **register blocking** — the micro-kernel amortizes one kernel-vector load
  over ``reg_n`` FMAs; small ``reg_n`` leaves the FMA pipes idle, while
  ``reg_n`` larger than the architectural register budget forces spills;
* **output-width remainder** — ``out_width % reg_n`` produces a partially
  filled tile;
* **cache residency** — the working sets implied by ``ic_bn``/``oc_bn`` must
  fit the L1/L2 caches or reuse is lost;
* **kernel-loop unrolling** — small benefit for small kernels, slight
  front-end cost for large ones.

The same module also provides the cost of a convolution executed in the
*default* NCHW layout (no blocking), which anchors the "Baseline" row of
Table 3, and of an im2col+GEMM execution, used by the library-backed baseline
frameworks on ARM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..hardware.cpu import CPUSpec
from ..schedule.loopnest import conv_parallel_chunks, conv_parallel_chunks_for_oc_bn
from ..schedule.template import ConvSchedule
from ..schedule.workload import ConvWorkload
from .parallel import THREAD_POOL, ThreadingModel

__all__ = [
    "ConvCostModel",
    "ConvCostBreakdown",
    "estimate_conv_time",
    "estimate_conv_time_default_layout",
]

#: Fraction of peak DRAM bandwidth a single convolution stream achieves.
_STREAM_EFFICIENCY = 0.70
#: Cycles of address generation / load overhead amortized per kernel load in
#: the micro-kernel (denominator of the register-blocking utilization).
_LOAD_OVERHEAD_CYCLES = 1.6
#: Fixed per-operation launch cost of the compiled operator (argument
#: unpacking, loop setup) in seconds.
_OP_LAUNCH_OVERHEAD_S = 0.8e-6


@dataclass(frozen=True)
class ConvCostBreakdown:
    """Detailed cost estimate for a single convolution."""

    workload: ConvWorkload
    schedule: Optional[ConvSchedule]
    compute_time_s: float
    memory_time_s: float
    efficiency: float
    parallel_chunks: int
    single_thread_time_s: float
    total_time_s: float
    num_threads: int

    @property
    def bound(self) -> str:
        """Whether the estimate is compute- or memory-bound."""
        return "compute" if self.compute_time_s >= self.memory_time_s else "memory"


class ConvCostModel:
    """Cost model instance bound to one CPU target."""

    def __init__(
        self,
        cpu: CPUSpec,
        threading: ThreadingModel = THREAD_POOL,
        base_efficiency: float = 0.82,
    ) -> None:
        self.cpu = cpu
        self.threading = threading
        #: Efficiency an ideally-blocked kernel reaches relative to peak FMA
        #: throughput (instruction overheads that no blocking removes).
        self.base_efficiency = base_efficiency

    # ------------------------------------------------------------------ #
    # efficiency terms
    # ------------------------------------------------------------------ #
    def _efficiency_arrays(
        self,
        workload: ConvWorkload,
        ic_bn: np.ndarray,
        oc_bn: np.ndarray,
        reg_n: np.ndarray,
        unroll: np.ndarray,
    ) -> np.ndarray:
        """All efficiency terms over a candidate batch, in one float64 pass.

        This is the single implementation of the model's formulas; the scalar
        :meth:`efficiency` evaluates it on size-1 arrays, so batched and
        per-candidate estimates can never drift apart.
        """
        # Vector-lane utilization: partially filled vectors waste lanes.
        lanes = self.cpu.simd_lanes_fp32
        vectors = -(-oc_bn // lanes)  # ceil division
        vector_util = oc_bn / (vectors * lanes)

        # Register blocking: reg_n FMAs amortize one kernel-vector load;
        # accumulators beyond the architectural budget spill to the stack.
        # Registers needed: reg_n accumulators per oc_bn vector group plus one
        # for the broadcast kernel value and a couple of scratch registers.
        register_util = reg_n / (reg_n + _LOAD_OVERHEAD_CYCLES)
        needed = reg_n * vectors + 2
        budget = self.cpu.isa.max_unroll_registers()
        register_util = np.where(needed > budget, register_util * 0.6, register_util)

        # Output-width remainder: the last reg_n tile may be partially filled.
        tiles = -(-workload.out_width // reg_n)
        remainder_util = workload.out_width / (tiles * reg_n)

        # Kernel-loop unrolling: small benefit for small kernels, slight
        # front-end cost for large ones.
        taps = workload.kernel_h * workload.kernel_w
        unroll_factor = np.where(unroll, 1.04 if taps <= 9 else 0.97, 1.0)

        dtype_bytes = 4
        # Inner working set: one kernel block slice, the input pixels feeding
        # a reg_n tile, and the accumulators.
        inner_bytes = (
            ic_bn * oc_bn * workload.kernel_h * workload.kernel_w * dtype_bytes
            + ic_bn * (reg_n * workload.stride[1] + workload.kernel_w) * dtype_bytes
            + reg_n * oc_bn * dtype_bytes
        )
        # Mid-level working set: the full kernel block for this output-channel
        # block plus an input row band, reused across the output row.
        in_channels = workload.in_channels // workload.groups
        mid_bytes = (
            in_channels * oc_bn * workload.kernel_h * workload.kernel_w * dtype_bytes
            + in_channels * workload.kernel_h * workload.in_width * dtype_bytes
        )
        caches = self.cpu.caches
        # Full reuse only when the smallest level holding the inner set is the
        # L1 data cache (mirrors level_for_working_set + name check).
        if len(caches):
            inner_factor = np.select(
                [inner_bytes <= level.size_bytes for level in caches],
                [1.0 if level.name == "L1" else 0.8 for level in caches],
                default=0.8,
            )
        else:
            inner_factor = np.full(inner_bytes.shape, 0.8)
        mid_factor = caches.residency_factor_batch(mid_bytes)
        # Blend: the inner set dominates reuse, the mid set matters for
        # streaming the kernel block.
        cache_factor = 0.6 * inner_factor + 0.4 * mid_factor

        efficiency = (
            self.base_efficiency
            * vector_util
            * register_util
            * remainder_util
            * unroll_factor
            * cache_factor
        )
        return np.clip(efficiency, 1e-3, 1.0)

    def efficiency(self, workload: ConvWorkload, schedule: ConvSchedule) -> float:
        """Overall fraction of peak FMA throughput achieved by a schedule."""
        return float(
            self._efficiency_arrays(
                workload,
                np.array([schedule.ic_bn], dtype=np.int64),
                np.array([schedule.oc_bn], dtype=np.int64),
                np.array([schedule.reg_n], dtype=np.int64),
                np.array([schedule.unroll_ker], dtype=bool),
            )[0]
        )

    # ------------------------------------------------------------------ #
    # time estimates
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        workload: ConvWorkload,
        schedule: ConvSchedule,
        num_threads: int = 1,
    ) -> ConvCostBreakdown:
        """Estimated wall-clock time of the blocked template."""
        efficiency = self.efficiency(workload, schedule)
        peak_flops = self.cpu.peak_gflops_per_core * 1e9
        compute_time = workload.flops / (peak_flops * efficiency)
        memory_time = workload.bytes_accessed() / (
            self.cpu.dram_bandwidth_bytes_per_sec * _STREAM_EFFICIENCY
        )
        single_thread = max(compute_time, memory_time) + _OP_LAUNCH_OVERHEAD_S
        chunks = conv_parallel_chunks(workload, schedule)
        total = self.threading.parallel_time(
            single_thread, num_threads, chunks, num_regions=1
        )
        return ConvCostBreakdown(
            workload=workload,
            schedule=schedule,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            efficiency=efficiency,
            parallel_chunks=chunks,
            single_thread_time_s=single_thread,
            total_time_s=total,
            num_threads=num_threads,
        )

    def estimate_batch(
        self,
        workload: ConvWorkload,
        schedules: Sequence[ConvSchedule],
        num_threads: int = 1,
    ) -> np.ndarray:
        """Estimated wall-clock times of many schedules for one workload.

        Vectorized twin of :meth:`estimate`: every efficiency term is
        evaluated as one float64 numpy expression over the whole candidate
        batch, using exactly the formulas (and operation order) of the scalar
        path, so the returned array matches per-candidate :meth:`estimate`
        calls and the local search ranks candidates identically.
        """
        if not schedules:
            return np.empty(0, dtype=np.float64)
        return self.estimate_arrays(
            workload,
            np.array([s.ic_bn for s in schedules], dtype=np.int64),
            np.array([s.oc_bn for s in schedules], dtype=np.int64),
            np.array([s.reg_n for s in schedules], dtype=np.int64),
            np.array([s.unroll_ker for s in schedules], dtype=bool),
            num_threads,
        )

    def estimate_arrays(
        self,
        workload: ConvWorkload,
        ic_bn: np.ndarray,
        oc_bn: np.ndarray,
        reg_n: np.ndarray,
        unroll: np.ndarray,
        num_threads: int = 1,
    ) -> np.ndarray:
        """Array-native core of :meth:`estimate_batch`.

        Takes the schedule tuple as four parallel arrays (see
        ``repro.schedule.candidates.candidate_grid``) so the tuning hot path
        never has to materialize per-candidate schedule objects: scoring the
        ~O(100) candidates of a workload costs a handful of array operations
        instead of ~O(100) Python-level model evaluations.
        """
        efficiency = self._efficiency_arrays(workload, ic_bn, oc_bn, reg_n, unroll)
        peak_flops = self.cpu.peak_gflops_per_core * 1e9
        compute_time = workload.flops / (peak_flops * efficiency)
        memory_time = workload.bytes_accessed() / (
            self.cpu.dram_bandwidth_bytes_per_sec * _STREAM_EFFICIENCY
        )
        single_thread = np.maximum(compute_time, memory_time) + _OP_LAUNCH_OVERHEAD_S
        chunks = conv_parallel_chunks_for_oc_bn(workload, oc_bn)
        return self.threading.parallel_time_batch(
            single_thread, num_threads, chunks, num_regions=1
        )

    def estimate_default_layout(
        self,
        workload: ConvWorkload,
        num_threads: int = 1,
        simd_efficiency: float = 0.13,
    ) -> ConvCostBreakdown:
        """Estimated time of a convolution executed directly in NCHW.

        Without channel blocking the innermost dimension is the feature-map
        width with a stride-1 access pattern on the *input* but a
        gather/broadcast pattern on the kernel, so the compiler vectorizes
        poorly and cache reuse of the kernel is low; ``simd_efficiency``
        captures the achieved fraction of peak (the Table 3 baseline row).
        """
        peak_flops = self.cpu.peak_gflops_per_core * 1e9
        compute_time = workload.flops / (peak_flops * simd_efficiency)
        memory_time = workload.bytes_accessed() / (
            self.cpu.dram_bandwidth_bytes_per_sec * _STREAM_EFFICIENCY * 0.8
        )
        single_thread = max(compute_time, memory_time) + _OP_LAUNCH_OVERHEAD_S
        chunks = workload.batch * workload.out_channels * workload.out_height
        total = self.threading.parallel_time(
            single_thread, num_threads, chunks, num_regions=1
        )
        return ConvCostBreakdown(
            workload=workload,
            schedule=None,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            efficiency=simd_efficiency,
            parallel_chunks=chunks,
            single_thread_time_s=single_thread,
            total_time_s=total,
            num_threads=num_threads,
        )

    def estimate_im2col_gemm(
        self,
        workload: ConvWorkload,
        num_threads: int = 1,
        gemm_efficiency: float = 0.55,
    ) -> ConvCostBreakdown:
        """Estimated time of an im2col + GEMM execution (BLAS-library style).

        Used by the OpenBLAS/Eigen-backed baselines: the GEMM itself runs at a
        decent fraction of peak, but the im2col lowering materializes a
        ``C*KH*KW x OH*OW`` buffer whose write+read traffic is pure overhead.
        """
        peak_flops = self.cpu.peak_gflops_per_core * 1e9
        compute_time = workload.flops / (peak_flops * gemm_efficiency)
        im2col_elems = (
            workload.batch
            * (workload.in_channels // workload.groups)
            * workload.kernel_h
            * workload.kernel_w
            * workload.out_height
            * workload.out_width
        )
        extra_bytes = 2 * im2col_elems * 4
        memory_time = (workload.bytes_accessed() + extra_bytes) / (
            self.cpu.dram_bandwidth_bytes_per_sec * _STREAM_EFFICIENCY
        )
        single_thread = compute_time + memory_time + _OP_LAUNCH_OVERHEAD_S
        chunks = max(1, workload.out_channels // 8)
        total = self.threading.parallel_time(
            single_thread, num_threads, chunks, num_regions=2
        )
        return ConvCostBreakdown(
            workload=workload,
            schedule=None,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            efficiency=gemm_efficiency,
            parallel_chunks=chunks,
            single_thread_time_s=single_thread,
            total_time_s=total,
            num_threads=num_threads,
        )


def estimate_conv_time(
    workload: ConvWorkload,
    schedule: ConvSchedule,
    cpu: CPUSpec,
    num_threads: int = 1,
    threading: ThreadingModel = THREAD_POOL,
) -> float:
    """Convenience function returning just the estimated seconds."""
    model = ConvCostModel(cpu, threading)
    return model.estimate(workload, schedule, num_threads).total_time_s


def estimate_conv_time_default_layout(
    workload: ConvWorkload,
    cpu: CPUSpec,
    num_threads: int = 1,
    threading: ThreadingModel = THREAD_POOL,
) -> float:
    """Convenience function for the un-blocked NCHW execution time."""
    model = ConvCostModel(cpu, threading)
    return model.estimate_default_layout(workload, num_threads).total_time_s

"""Analytical CPU cost model substrate.

Substitutes for timing schedules and whole models on the paper's physical
testbeds (see DESIGN.md §3): convolution cost as a function of the schedule
tuple, layout-transform and memory-bound operator costs, fork/join models of
the custom thread pool vs OpenMP, and an end-to-end graph latency estimator.
"""

from .conv_cost import (
    ConvCostBreakdown,
    ConvCostModel,
    estimate_conv_time,
    estimate_conv_time_default_layout,
)
from .graph_cost import GraphCostModel, LatencyReport, NodeCost, conv_workload_from_node
from .parallel import OPENMP, OPENMP_EIGEN, OPENMP_OPENBLAS, THREAD_POOL, ThreadingModel
from .transform_cost import elementwise_op_time, layout_transform_time, memory_bound_op_time

__all__ = [
    "OPENMP",
    "OPENMP_EIGEN",
    "OPENMP_OPENBLAS",
    "THREAD_POOL",
    "ConvCostBreakdown",
    "ConvCostModel",
    "GraphCostModel",
    "LatencyReport",
    "NodeCost",
    "ThreadingModel",
    "conv_workload_from_node",
    "elementwise_op_time",
    "estimate_conv_time",
    "estimate_conv_time_default_layout",
    "layout_transform_time",
    "memory_bound_op_time",
]

"""End-to-end graph latency estimation.

Walks an (optimized or unoptimized) computation graph and sums per-node cost
estimates: convolutions through :class:`ConvCostModel`, layout transforms and
memory-bound operators through :mod:`transform_cost`, dense layers as GEMMs,
and a per-operator framework overhead for every node that actually executes
at runtime (fused followers and compile-time transforms are free).

The result is the quantity every experiment of the paper reports — the
end-to-end inference latency of one image (batch 1) on a given CPU with a
given number of threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph.graph import Graph
from ..graph.node import Node
from ..hardware.cpu import CPUSpec
from ..schedule.template import ConvSchedule
from ..schedule.workload import ConvWorkload, DenseWorkload
from .conv_cost import ConvCostModel
from .parallel import THREAD_POOL, ThreadingModel
from .transform_cost import layout_transform_time, memory_bound_op_time

__all__ = ["GraphCostModel", "LatencyReport", "NodeCost", "conv_workload_from_node"]

#: Operators that are pure memory traffic when not fused.
_MEMORY_BOUND_OPS = {
    "relu",
    "sigmoid",
    "softmax",
    "bias_add",
    "scale_shift",
    "batch_norm",
    "elemwise_add",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "concat",
    "flatten",
    "reshape",
    "transpose",
    "dropout",
}


def conv_workload_from_node(node: Node) -> ConvWorkload:
    """Reconstruct the :class:`ConvWorkload` of a conv2d graph node."""
    if not node.is_op_type("conv2d"):
        raise ValueError(f"node {node.name} is not a conv2d")
    data_spec = node.inputs[0].spec
    weight_spec = node.inputs[1].spec
    if data_spec is None or weight_spec is None:
        raise ValueError(f"conv2d node {node.name} lacks inferred input specs")
    groups = int(node.attrs.get("groups", 1))
    stride = node.attrs.get("stride", 1)
    padding = node.attrs.get("padding", 0)
    dilation = node.attrs.get("dilation", 1)
    return ConvWorkload(
        batch=data_spec.axis_extent("N"),
        in_channels=data_spec.axis_extent("C"),
        in_height=data_spec.axis_extent("H"),
        in_width=data_spec.axis_extent("W"),
        out_channels=weight_spec.axis_extent("O"),
        kernel_h=weight_spec.axis_extent("H"),
        kernel_w=weight_spec.axis_extent("W"),
        stride=stride if isinstance(stride, (tuple, list)) else (stride, stride),
        padding=padding if isinstance(padding, (tuple, list)) else (padding, padding),
        dilation=dilation if isinstance(dilation, (tuple, list)) else (dilation, dilation),
        groups=groups,
    )


@dataclass
class NodeCost:
    """Cost estimate for a single graph node."""

    name: str
    op: str
    time_s: float
    category: str  # "conv", "dense", "transform", "memory", "detection", "free"
    detail: str = ""


@dataclass
class LatencyReport:
    """Aggregate latency estimate for one graph execution."""

    graph_name: str
    cpu_name: str
    num_threads: int
    node_costs: List[NodeCost] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(cost.time_s for cost in self.node_costs)

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    def by_category(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for cost in self.node_costs:
            totals[cost.category] = totals.get(cost.category, 0.0) + cost.time_s
        return totals

    def summary(self) -> str:
        lines = [
            f"{self.graph_name} on {self.cpu_name} with {self.num_threads} threads: "
            f"{self.total_ms:.2f} ms"
        ]
        for category, seconds in sorted(self.by_category().items()):
            lines.append(f"  {category:<10s} {seconds * 1e3:8.3f} ms")
        return "\n".join(lines)


class GraphCostModel:
    """Estimate end-to-end inference latency of a graph on a CPU target."""

    def __init__(
        self,
        cpu: CPUSpec,
        threading: ThreadingModel = THREAD_POOL,
        per_op_overhead_s: float = 1.0e-6,
        conv_base_efficiency: float = 0.82,
        default_layout_efficiency: float = 0.08,
        gemm_efficiency: float = 0.50,
        conv_mode: str = "template",
    ) -> None:
        """
        Args:
            cpu: target CPU description.
            threading: fork/join model of the multi-threading runtime.
            per_op_overhead_s: framework overhead charged for every runtime
                operator (graph interpretation, argument marshalling).  NeoCPU
                compiles to a lean module so this is small; framework baselines
                set it much higher.
            conv_base_efficiency: peak fraction of an ideally-blocked conv.
            default_layout_efficiency: peak fraction of an NCHW (un-blocked)
                conv; anchors the Table 3 baseline.
            gemm_efficiency: peak fraction for dense/GEMM layers.
            conv_mode: ``"template"`` (blocked schedules / default layout as
                annotated on the graph) or ``"im2col"`` (BLAS-library style,
                used by OpenBLAS/Eigen-backed baselines).
        """
        self.cpu = cpu
        self.threading = threading
        self.per_op_overhead_s = per_op_overhead_s
        self.conv_model = ConvCostModel(cpu, threading, conv_base_efficiency)
        self.default_layout_efficiency = default_layout_efficiency
        self.gemm_efficiency = gemm_efficiency
        if conv_mode not in ("template", "im2col"):
            raise ValueError(f"unknown conv_mode {conv_mode!r}")
        self.conv_mode = conv_mode

    # ------------------------------------------------------------------ #
    # per-node costs
    # ------------------------------------------------------------------ #
    def _conv_cost(self, node: Node, num_threads: int) -> NodeCost:
        workload = conv_workload_from_node(node)
        schedule = node.attrs.get("schedule")
        if self.conv_mode == "im2col":
            breakdown = self.conv_model.estimate_im2col_gemm(
                workload, num_threads, self.gemm_efficiency
            )
            detail = "im2col+gemm"
        elif schedule is not None:
            if not isinstance(schedule, ConvSchedule):
                schedule = ConvSchedule.from_dict(schedule)
            breakdown = self.conv_model.estimate(workload, schedule, num_threads)
            detail = f"schedule={schedule.as_tuple()}"
        else:
            breakdown = self.conv_model.estimate_default_layout(
                workload, num_threads, self.default_layout_efficiency
            )
            detail = "default-layout"
        return NodeCost(node.name, "conv2d", breakdown.total_time_s, "conv", detail)

    def _dense_cost(self, node: Node, num_threads: int) -> NodeCost:
        data_spec = node.inputs[0].spec
        weight_spec = node.inputs[1].spec
        workload = DenseWorkload(
            batch=data_spec.logical_shape[0],
            in_features=data_spec.logical_shape[-1],
            out_features=weight_spec.logical_shape[0],
        )
        peak = self.cpu.peak_gflops_per_core * 1e9
        compute = workload.flops / (peak * self.gemm_efficiency)
        memory = workload.bytes_accessed() / (
            self.cpu.dram_bandwidth_bytes_per_sec * 0.7
        )
        serial = max(compute, memory)
        chunks = max(1, workload.out_features // 16)
        total = self.threading.parallel_time(serial, num_threads, chunks, 1)
        return NodeCost(node.name, "dense", total, "dense", f"{workload.key()}")

    def _transform_cost(self, node: Node, num_threads: int) -> NodeCost:
        if node.attrs.get("compile_time"):
            return NodeCost(node.name, node.op, 0.0, "free", "compile-time")
        spec = node.inputs[0].spec
        time_s = layout_transform_time(spec.nbytes, self.cpu, num_threads, self.threading)
        return NodeCost(node.name, node.op, time_s, "transform", str(spec.layout))

    def _memory_bound_cost(self, node: Node, num_threads: int) -> NodeCost:
        anchor = node.attrs.get("fuse_group")
        if anchor is not None and anchor != node.name:
            return NodeCost(node.name, node.op, 0.0, "free", f"fused into {anchor}")
        input_bytes = [
            producer.spec.nbytes
            for producer in node.inputs
            if producer.spec is not None and not producer.is_constant
        ]
        output_bytes = node.spec.nbytes if node.spec is not None else 0
        reuse = 1.0
        if node.op in ("max_pool2d", "avg_pool2d"):
            kernel = node.attrs.get("kernel", 2)
            k_h, k_w = (kernel if isinstance(kernel, (tuple, list)) else (kernel, kernel))
            stride = node.attrs.get("stride", kernel)
            s_h, s_w = (stride if isinstance(stride, (tuple, list)) else (stride, stride))
            reuse = max(1.0, (k_h * k_w) / max(1, s_h * s_w))
        time_s = memory_bound_op_time(
            input_bytes, output_bytes, self.cpu, num_threads, self.threading, reuse
        )
        return NodeCost(node.name, node.op, time_s, "memory")

    def _detection_cost(self, node: Node, num_threads: int) -> NodeCost:
        # Multibox decoding + per-class NMS is scalar-heavy and largely
        # sequential; model it as a per-anchor-per-class cost with limited
        # parallel speedup over classes.
        cls_spec = node.inputs[0].spec
        num_classes = cls_spec.logical_shape[1]
        num_anchors = cls_spec.logical_shape[2] if len(cls_spec.logical_shape) > 2 else 1
        per_box_ns = 1.2
        serial = num_classes * num_anchors * per_box_ns * 1e-9
        total = self.threading.parallel_time(serial, min(num_threads, 4), num_classes, 1)
        return NodeCost(node.name, node.op, total, "detection")

    # ------------------------------------------------------------------ #
    # whole graph
    # ------------------------------------------------------------------ #
    def estimate(self, graph: Graph, num_threads: Optional[int] = None) -> LatencyReport:
        """Estimate end-to-end latency of ``graph`` with ``num_threads`` threads."""
        threads = num_threads if num_threads is not None else self.cpu.num_cores
        report = LatencyReport(graph.name, self.cpu.name, threads)
        for node in graph.topological_order():
            if not node.is_op:
                continue
            if node.op == "conv2d":
                cost = self._conv_cost(node, threads)
            elif node.op == "dense":
                cost = self._dense_cost(node, threads)
            elif node.op == "layout_transform":
                cost = self._transform_cost(node, threads)
            elif node.op == "multibox_detection":
                cost = self._detection_cost(node, threads)
            elif node.op in _MEMORY_BOUND_OPS:
                cost = self._memory_bound_cost(node, threads)
            else:
                cost = NodeCost(node.name, node.op, 0.0, "free", "unmodelled")
            if cost.category != "free":
                cost.time_s += self.per_op_overhead_s
            report.node_costs.append(cost)
        return report

"""Batch normalization (inference mode) and its simplification.

Batch_Norm is a layout-tolerant operation (section 3.2): it only needs to know
which axis is the channel axis.  At inference time it is an affine transform
per channel, so the "simplify inference" graph pass folds it into a scale and
a shift (and, when it directly follows a convolution, into the convolution's
weights and bias — the classic BN folding).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "batch_norm_inference_nchw",
    "batch_norm_inference_nchwc",
    "batch_norm_to_scale_shift",
    "fold_batch_norm_into_conv",
]


def batch_norm_to_scale_shift(
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert BN parameters to per-channel (scale, shift).

    ``y = gamma * (x - mean) / sqrt(var + eps) + beta``
    ``  = scale * x + shift`` with ``scale = gamma / sqrt(var + eps)`` and
    ``shift = beta - scale * mean``.
    """
    scale = gamma / np.sqrt(variance + epsilon)
    shift = beta - scale * mean
    return scale.astype(np.float32), shift.astype(np.float32)


def batch_norm_inference_nchw(
    data: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch norm on an NCHW tensor."""
    scale, shift = batch_norm_to_scale_shift(gamma, beta, mean, variance, epsilon)
    return data * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)


def batch_norm_inference_nchwc(
    data: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch norm on an ``NCHW[x]c`` tensor.

    The per-channel parameters are reshaped to the (C_outer, 1, 1, c_inner)
    blocking of the data, so no layout transform is required — this is what
    makes BN layout-tolerant.
    """
    scale, shift = batch_norm_to_scale_shift(gamma, beta, mean, variance, epsilon)
    _, c_outer, _, _, c_inner = data.shape
    scale_b = scale.reshape(c_outer, c_inner).reshape(1, c_outer, 1, 1, c_inner)
    shift_b = shift.reshape(c_outer, c_inner).reshape(1, c_outer, 1, 1, c_inner)
    return data * scale_b + shift_b


def fold_batch_norm_into_conv(
    weight_oihw: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    epsilon: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a following batch norm into the convolution's weight and bias.

    Given ``conv(x) = W * x + b`` followed by ``BN(y) = scale*y + shift``, the
    fused operation is ``(scale*W) * x + (scale*b + shift)``.

    Returns:
        The folded (weight, bias) pair.
    """
    scale, shift = batch_norm_to_scale_shift(gamma, beta, mean, variance, epsilon)
    folded_weight = weight_oihw * scale.reshape(-1, 1, 1, 1)
    if bias is None:
        bias = np.zeros(weight_oihw.shape[0], dtype=np.float32)
    folded_bias = scale * bias + shift
    return folded_weight.astype(np.float32), folded_bias.astype(np.float32)

"""Reference 2D convolution kernels in the default NCHW layout.

Two implementations are provided:

* :func:`conv2d_nchw` — an im2col + matmul implementation used as the fast
  functional reference throughout the test suite and the executor's fallback
  path for un-tuned layouts;
* :func:`conv2d_nchw_naive` — a direct 7-loop implementation that follows the
  mathematical definition literally.  It is deliberately slow and exists only
  to validate the other kernels on tiny shapes.

Both operate on plain numpy arrays; the layout-aware wrappers live in the
operator registry.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..schedule.workload import ConvWorkload

__all__ = [
    "conv_output_size",
    "pad_nchw",
    "conv2d_nchw",
    "conv2d_nchw_naive",
    "workload_from_shapes",
]

PairLike = Union[int, Tuple[int, int]]


def _pair(value: PairLike) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(
    in_size: int, kernel: int, stride: int, padding: int, dilation: int = 1
) -> int:
    """Output spatial extent of a convolution along one dimension."""
    effective_kernel = (kernel - 1) * dilation + 1
    out = (in_size + 2 * padding - effective_kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution output size is non-positive "
            f"(in={in_size}, kernel={kernel}, stride={stride}, pad={padding})"
        )
    return out


def pad_nchw(data: np.ndarray, padding: Tuple[int, int]) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    pad_h, pad_w = padding
    if pad_h == 0 and pad_w == 0:
        return data
    return np.pad(
        data,
        ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
        constant_values=0,
    )


def workload_from_shapes(
    data_shape: Tuple[int, int, int, int],
    weight_shape: Tuple[int, int, int, int],
    stride: PairLike = 1,
    padding: PairLike = 0,
    dilation: PairLike = 1,
    groups: int = 1,
) -> ConvWorkload:
    """Build a :class:`ConvWorkload` from NCHW/OIHW shapes and conv params."""
    batch, in_c, in_h, in_w = data_shape
    out_c, w_in_c, k_h, k_w = weight_shape
    if w_in_c * groups != in_c:
        raise ValueError(
            f"weight input channels {w_in_c} x groups {groups} != data channels {in_c}"
        )
    return ConvWorkload(
        batch=batch,
        in_channels=in_c,
        in_height=in_h,
        in_width=in_w,
        out_channels=out_c,
        kernel_h=k_h,
        kernel_w=k_w,
        stride=_pair(stride),
        padding=_pair(padding),
        dilation=_pair(dilation),
        groups=groups,
    )


def _im2col(
    data: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    dilation: Tuple[int, int],
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Lower padded NCHW data to column matrix (N, C*KH*KW, OH*OW)."""
    batch, channels, _, _ = data.shape
    k_h, k_w = kernel
    s_h, s_w = stride
    d_h, d_w = dilation
    out_h, out_w = out_hw
    cols = np.empty(
        (batch, channels, k_h, k_w, out_h, out_w), dtype=data.dtype
    )
    for i in range(k_h):
        for j in range(k_w):
            h_start = i * d_h
            w_start = j * d_w
            h_end = h_start + s_h * out_h
            w_end = w_start + s_w * out_w
            cols[:, :, i, j, :, :] = data[:, :, h_start:h_end:s_h, w_start:w_end:s_w]
    return cols.reshape(batch, channels * k_h * k_w, out_h * out_w)


def conv2d_nchw(
    data: np.ndarray,
    weight: np.ndarray,
    stride: PairLike = 1,
    padding: PairLike = 0,
    dilation: PairLike = 1,
    groups: int = 1,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """2D convolution on NCHW data with OIHW weights (im2col reference).

    Args:
        data: input of shape (N, C, H, W).
        weight: kernels of shape (K, C // groups, R, S).
        stride, padding, dilation: scalar or (h, w) pairs.
        groups: grouped convolution factor.
        bias: optional per-output-channel bias of shape (K,).

    Returns:
        Output of shape (N, K, OH, OW) in the same dtype as the input.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    dilation = _pair(dilation)
    batch, in_c, in_h, in_w = data.shape
    out_c, w_in_c, k_h, k_w = weight.shape
    if w_in_c * groups != in_c:
        raise ValueError(
            f"incompatible channels: data C={in_c}, weight expects "
            f"{w_in_c} x groups {groups}"
        )
    if out_c % groups:
        raise ValueError(f"out_channels {out_c} not divisible by groups {groups}")
    out_h = conv_output_size(in_h, k_h, stride[0], padding[0], dilation[0])
    out_w = conv_output_size(in_w, k_w, stride[1], padding[1], dilation[1])

    padded = pad_nchw(data, padding)
    outputs = np.empty((batch, out_c, out_h, out_w), dtype=np.result_type(data, weight))
    in_c_per_group = in_c // groups
    out_c_per_group = out_c // groups
    for g in range(groups):
        group_data = padded[:, g * in_c_per_group : (g + 1) * in_c_per_group]
        group_weight = weight[g * out_c_per_group : (g + 1) * out_c_per_group]
        cols = _im2col(group_data, (k_h, k_w), stride, dilation, (out_h, out_w))
        w_mat = group_weight.reshape(out_c_per_group, -1)
        # (N, K_g, OH*OW) = (K_g, C*KH*KW) @ (N, C*KH*KW, OH*OW)
        out = np.einsum("kc,ncp->nkp", w_mat, cols)
        outputs[:, g * out_c_per_group : (g + 1) * out_c_per_group] = out.reshape(
            batch, out_c_per_group, out_h, out_w
        )
    if bias is not None:
        outputs = outputs + bias.reshape(1, out_c, 1, 1)
    return outputs.astype(data.dtype, copy=False)


def conv2d_nchw_naive(
    data: np.ndarray,
    weight: np.ndarray,
    stride: PairLike = 1,
    padding: PairLike = 0,
    dilation: PairLike = 1,
    groups: int = 1,
) -> np.ndarray:
    """Direct 7-loop convolution; only suitable for tiny test shapes."""
    stride = _pair(stride)
    padding = _pair(padding)
    dilation = _pair(dilation)
    batch, in_c, in_h, in_w = data.shape
    out_c, w_in_c, k_h, k_w = weight.shape
    out_h = conv_output_size(in_h, k_h, stride[0], padding[0], dilation[0])
    out_w = conv_output_size(in_w, k_w, stride[1], padding[1], dilation[1])
    padded = pad_nchw(data, padding)
    out = np.zeros((batch, out_c, out_h, out_w), dtype=np.float64)
    in_c_per_group = in_c // groups
    out_c_per_group = out_c // groups
    for n in range(batch):
        for k in range(out_c):
            g = k // out_c_per_group
            for oh in range(out_h):
                for ow in range(out_w):
                    acc = 0.0
                    for c in range(w_in_c):
                        ic = g * in_c_per_group + c
                        for r in range(k_h):
                            for s in range(k_w):
                                ih = oh * stride[0] + r * dilation[0]
                                iw = ow * stride[1] + s * dilation[1]
                                acc += padded[n, ic, ih, iw] * weight[k, c, r, s]
                    out[n, k, oh, ow] = acc
    return out.astype(data.dtype, copy=False)

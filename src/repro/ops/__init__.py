"""Operator library substrate.

Numpy implementations of every CNN operator needed by the evaluation models
(convolution in both NCHW and blocked NCHW[x]c layouts, pooling, batch norm,
activations, dense, concat, the SSD detection head) plus the operator
registry that classifies them by layout behaviour for the graph-level passes.
"""

from . import op_library  # noqa: F401  (registers the standard operator set)
from .activation import clip, dropout_inference, leaky_relu, relu, sigmoid, softmax
from .batch_norm import (
    batch_norm_inference_nchw,
    batch_norm_inference_nchwc,
    batch_norm_to_scale_shift,
    fold_batch_norm_into_conv,
)
from .blocked_conv import conv2d_nchwc, conv2d_nchwc_from_nchw, prepack_weights
from .conv2d import (
    conv2d_nchw,
    conv2d_nchw_naive,
    conv_output_size,
    pad_nchw,
    workload_from_shapes,
)
from .dense import concat, concat_channels_nchw, dense, flatten_nchw, reshape
from .elementwise import add, bias_add_nchw, bias_add_nchwc, multiply, scale_shift_nchw
from .pooling import (
    avg_pool2d_nchw,
    avg_pool2d_nchwc,
    global_avg_pool2d_nchw,
    global_avg_pool2d_nchwc,
    max_pool2d_nchw,
    max_pool2d_nchwc,
)
from .registry import LayoutCategory, OpDef, OpRegistry, get_op, register_op, registry
from .ssd_ops import decode_boxes, multibox_detection, multibox_prior, non_max_suppression

__all__ = [
    "LayoutCategory",
    "OpDef",
    "OpRegistry",
    "add",
    "avg_pool2d_nchw",
    "avg_pool2d_nchwc",
    "batch_norm_inference_nchw",
    "batch_norm_inference_nchwc",
    "batch_norm_to_scale_shift",
    "bias_add_nchw",
    "bias_add_nchwc",
    "clip",
    "concat",
    "concat_channels_nchw",
    "conv2d_nchw",
    "conv2d_nchw_naive",
    "conv2d_nchwc",
    "conv2d_nchwc_from_nchw",
    "conv_output_size",
    "decode_boxes",
    "dense",
    "dropout_inference",
    "flatten_nchw",
    "fold_batch_norm_into_conv",
    "get_op",
    "global_avg_pool2d_nchw",
    "global_avg_pool2d_nchwc",
    "leaky_relu",
    "max_pool2d_nchw",
    "max_pool2d_nchwc",
    "multibox_detection",
    "multibox_prior",
    "multiply",
    "non_max_suppression",
    "pad_nchw",
    "prepack_weights",
    "register_op",
    "registry",
    "relu",
    "reshape",
    "scale_shift_nchw",
    "sigmoid",
    "softmax",
    "workload_from_shapes",
]

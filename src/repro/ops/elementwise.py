"""Element-wise and broadcast operators.

``Elementwise_Add`` (residual connections in ResNet/DenseNet) is
layout-oblivious for identical layouts but — as section 3.3.2 notes — it
*requires both operands in the same layout*, which is why it participates in
the global search as a same-layout constraint between its producers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["add", "multiply", "bias_add_nchw", "bias_add_nchwc", "scale_shift_nchw"]


def add(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Element-wise addition of two same-shape (same-layout) tensors."""
    if lhs.shape != rhs.shape:
        raise ValueError(
            f"elementwise add requires identical shapes/layouts, got "
            f"{lhs.shape} vs {rhs.shape}"
        )
    return lhs + rhs


def multiply(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Element-wise multiplication of two same-shape tensors."""
    if lhs.shape != rhs.shape:
        raise ValueError(
            f"elementwise multiply requires identical shapes, got "
            f"{lhs.shape} vs {rhs.shape}"
        )
    return lhs * rhs


def bias_add_nchw(data: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Add a per-channel bias to an NCHW tensor."""
    return data + bias.reshape(1, -1, 1, 1)


def bias_add_nchwc(data: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Add a per-channel bias to an ``NCHW[x]c`` tensor without un-blocking."""
    _, c_outer, _, _, c_inner = data.shape
    return data + bias.reshape(c_outer, c_inner).reshape(1, c_outer, 1, 1, c_inner)


def scale_shift_nchw(data: np.ndarray, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Per-channel affine transform on NCHW data (folded batch norm)."""
    return data * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)

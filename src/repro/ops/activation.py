"""Activation and normalization-free unary operators.

ReLU, sigmoid and softmax are layout-oblivious (section 3.2 category 1): they
apply element-wise (softmax along a known axis of an un-blocked tensor) and
therefore never force a layout transform.  They are also the prime fusion
candidates — the fusion pass attaches them to the producing convolution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relu", "leaky_relu", "sigmoid", "softmax", "clip", "dropout_inference"]


def relu(data: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(data, 0)


def leaky_relu(data: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Element-wise leaky ReLU."""
    return np.where(data >= 0, data, alpha * data)


def sigmoid(data: np.ndarray) -> np.ndarray:
    """Element-wise logistic sigmoid, numerically stabilized."""
    out = np.empty_like(data, dtype=np.float64)
    positive = data >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-data[positive]))
    exp_x = np.exp(data[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(data.dtype, copy=False)


def softmax(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max-subtraction for numerical stability."""
    shifted = data - data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def clip(data: np.ndarray, a_min: float, a_max: float) -> np.ndarray:
    """Element-wise clip (used e.g. for ReLU6-style activations)."""
    return np.clip(data, a_min, a_max)


def dropout_inference(data: np.ndarray, rate: float = 0.5) -> np.ndarray:
    """Dropout at inference time is the identity (the simplify pass removes it).

    The ``rate`` argument is accepted for signature compatibility with the
    graph builder and ignored, matching framework inference semantics.
    """
    del rate
    return data

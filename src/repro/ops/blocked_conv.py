"""Blocked (NCHW[x]c) direct convolution — the paper's operation template.

This kernel is the functional counterpart of Algorithm 1: it consumes the
feature map in ``NCHW[ic_bn]c``, the pre-packed weights in
``OIHW[ic_bn]i[oc_bn]o`` (the paper's ``KCRS[x]c[y]k``), and produces the
output in ``NCHW[oc_bn]c``.  The loop structure mirrors the template —
outer loops over output-channel blocks, output rows and output-width tiles of
``reg_n`` pixels, reduction loops over input-channel blocks and the kernel
window, and a vectorized micro-kernel accumulating ``reg_n`` output vectors of
``oc_bn`` lanes each.

The micro-kernel body is evaluated with a numpy ``einsum`` over the
``(ic_inner, ow_inner, oc_inner)`` axes: on real hardware these are the FMA
lanes and register-blocked pixels of Figure 1; in this pure-Python
reproduction numpy's vectorized arithmetic plays the role of the SIMD unit.
Numerical results are identical (up to fp round-off) to the NCHW reference,
which the test suite asserts for a range of workloads and schedules.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..schedule.template import ConvSchedule, validate_schedule
from ..schedule.workload import ConvWorkload
from ..tensor.transform import pack_conv_weights, to_blocked_nchwc, from_blocked_nchwc
from .conv2d import conv_output_size, workload_from_shapes

__all__ = [
    "conv2d_nchwc",
    "conv2d_nchwc_from_nchw",
    "prepack_weights",
]


def prepack_weights(weight_oihw: np.ndarray, schedule: ConvSchedule) -> np.ndarray:
    """Pre-transform OIHW weights into the schedule's blocked layout.

    This corresponds to the compile-time kernel pre-transformation of
    section 3.2 (invariant model parameters are transformed once, not at
    every inference).
    """
    return pack_conv_weights(weight_oihw, schedule.ic_bn, schedule.oc_bn)


def _pad_blocked(data: np.ndarray, padding: Tuple[int, int]) -> np.ndarray:
    """Zero-pad the spatial dims of an NCHW[x]c tensor (N, C//x, H, W, x)."""
    pad_h, pad_w = padding
    if pad_h == 0 and pad_w == 0:
        return data
    return np.pad(
        data,
        ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w), (0, 0)),
        mode="constant",
        constant_values=0,
    )


def conv2d_nchwc(
    data_blocked: np.ndarray,
    weight_packed: np.ndarray,
    workload: ConvWorkload,
    schedule: ConvSchedule,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Direct convolution on blocked data, following the template loop nest.

    Args:
        data_blocked: input feature map, shape
            ``(N, C/ic_bn, H, W, ic_bn)``.
        weight_packed: pre-packed kernel, shape
            ``(K/oc_bn, C/ic_bn, R, S, ic_bn, oc_bn)``.
        workload: shape signature (must be consistent with the arrays).
        schedule: the template configuration (ic_bn/oc_bn/reg_n/unroll_ker).
        bias: optional per-output-channel bias of shape (K,).

    Returns:
        Output feature map of shape ``(N, K/oc_bn, OH, OW, oc_bn)``.
    """
    if workload.groups != 1:
        raise NotImplementedError(
            "blocked convolution template supports groups=1; grouped/depthwise "
            "convolutions fall back to the NCHW reference kernel"
        )
    validate_schedule(schedule, workload)
    ic_bn, oc_bn, reg_n = schedule.ic_bn, schedule.oc_bn, schedule.reg_n
    batch = workload.batch
    ic_outer = workload.in_channels // ic_bn
    oc_outer = workload.out_channels // oc_bn
    k_h, k_w = workload.kernel_h, workload.kernel_w
    s_h, s_w = workload.stride
    d_h, d_w = workload.dilation
    out_h, out_w = workload.out_height, workload.out_width

    expected_data = (batch, ic_outer, workload.in_height, workload.in_width, ic_bn)
    if tuple(data_blocked.shape) != expected_data:
        raise ValueError(
            f"blocked data shape {data_blocked.shape} != expected {expected_data}"
        )
    expected_weight = (oc_outer, ic_outer, k_h, k_w, ic_bn, oc_bn)
    if tuple(weight_packed.shape) != expected_weight:
        raise ValueError(
            f"packed weight shape {weight_packed.shape} != expected {expected_weight}"
        )

    padded = _pad_blocked(data_blocked, workload.padding)
    out = np.zeros((batch, oc_outer, out_h, out_w, oc_bn), dtype=np.float32)

    if bias is not None:
        bias_blocked = bias.reshape(oc_outer, oc_bn)
    else:
        bias_blocked = None

    # Outer loops: output-channel block, output row, output-width tile.  These
    # are the "disjoint chunks of OFMAP" parallelized in Algorithm 1.  The
    # batch axis is carried through the micro-kernel instead of looped in
    # Python: every sample shares the same loop nest, so a coalesced batch of
    # N requests pays the interpreter overhead once, not N times (this is what
    # makes the dynamic-batching scheduler's single `run_batch` execution
    # cheaper than N sequential runs).  numpy's batched matmul applies the
    # identical (tile, ic_bn) @ (ic_bn, oc_bn) kernel to each sample, so the
    # per-sample results are byte-identical to a batch-1 run.
    for oco in range(oc_outer):
        kernel_block = weight_packed[oco]  # (ic_outer, kh, kw, ic_bn, oc_bn)
        for oh in range(out_h):
            ih_base = oh * s_h
            for ow_start in range(0, out_w, reg_n):
                tile = min(reg_n, out_w - ow_start)
                # V_REG_1..V_REG_reg_n initialized to zero (Algorithm 1, l.10)
                acc = np.zeros((batch, tile, oc_bn), dtype=np.float32)
                iw_base = ow_start * s_w
                for ico in range(ic_outer):
                    for r in range(k_h):
                        ih = ih_base + r * d_h
                        for s in range(k_w):
                            iw0 = iw_base + s * d_w
                            # Input pixels for the reg_n output positions:
                            # shape (batch, tile, ic_bn)
                            pixels = padded[
                                :, ico, ih, iw0 : iw0 + tile * s_w : s_w, :
                            ]
                            # Kernel vector block: shape (ic_bn, oc_bn).
                            kvec = kernel_block[ico, r, s]
                            # vfmadd over ic_bn lanes for each of the tile
                            # output registers (Algorithm 1, l.13-17).
                            acc += pixels @ kvec
                if bias_blocked is not None:
                    acc = acc + bias_blocked[oco]
                out[:, oco, oh, ow_start : ow_start + tile, :] = acc
    return out


def conv2d_nchwc_from_nchw(
    data_nchw: np.ndarray,
    weight_oihw: np.ndarray,
    schedule: ConvSchedule,
    stride=1,
    padding=0,
    dilation=1,
    bias: Optional[np.ndarray] = None,
    return_blocked: bool = False,
) -> np.ndarray:
    """Convenience wrapper: run the blocked template on NCHW/OIHW inputs.

    Performs the layout transforms explicitly (data -> ``NCHW[ic_bn]c``,
    weights -> packed, output -> back to NCHW unless ``return_blocked``).
    This is exactly what a single un-optimized graph node pays when the layout
    transforms are *not* hoisted out — the overhead that sections 3.2/3.3
    eliminate.
    """
    workload = workload_from_shapes(
        data_nchw.shape, weight_oihw.shape, stride, padding, dilation
    )
    data_blocked = to_blocked_nchwc(data_nchw, schedule.ic_bn)
    weight_packed = prepack_weights(weight_oihw, schedule)
    out_blocked = conv2d_nchwc(data_blocked, weight_packed, workload, schedule, bias)
    if return_blocked:
        return out_blocked
    return from_blocked_nchwc(out_blocked, schedule.oc_bn)

"""SSD-specific operators: multibox priors, box decoding and NMS.

The object-detection model in the evaluation (SSD with a ResNet-50 base,
512x512 input) appends a detection head to the convolutional trunk:
anchor (prior) generation, class-score/box-regression reshaping, box decoding
against the anchors, and non-maximum suppression.  The paper points out that
OpenVINO excludes this "multibox detection" stage from its timing (Table 2
footnote); our baseline model of OpenVINO reproduces that by skipping the
cost of these operators.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "multibox_prior",
    "decode_boxes",
    "non_max_suppression",
    "multibox_detection",
]


def multibox_prior(
    feature_shape: Tuple[int, int],
    image_size: int,
    sizes: Sequence[float],
    ratios: Sequence[float],
) -> np.ndarray:
    """Generate anchor boxes for one feature map.

    Args:
        feature_shape: (height, width) of the feature map.
        image_size: input image size in pixels (boxes are normalized to [0,1]).
        sizes: anchor scales as a fraction of the image size.
        ratios: anchor aspect ratios.

    Returns:
        Array of shape (H*W*num_anchors, 4) with boxes as
        (cx, cy, w, h), normalized.
    """
    del image_size  # boxes are normalized; image size kept for API parity
    height, width = feature_shape
    num_anchors = len(sizes) + len(ratios) - 1
    boxes = np.zeros((height, width, num_anchors, 4), dtype=np.float32)
    for i in range(height):
        cy = (i + 0.5) / height
        for j in range(width):
            cx = (j + 0.5) / width
            anchor = 0
            for k, size in enumerate(sizes):
                ratio = ratios[0] if ratios else 1.0
                if k > 0:
                    ratio = ratios[0]
                w = size * np.sqrt(ratio)
                h = size / np.sqrt(ratio)
                boxes[i, j, anchor] = (cx, cy, w, h)
                anchor += 1
            for ratio in ratios[1:]:
                size = sizes[0]
                w = size * np.sqrt(ratio)
                h = size / np.sqrt(ratio)
                boxes[i, j, anchor] = (cx, cy, w, h)
                anchor += 1
    return boxes.reshape(-1, 4)


def decode_boxes(
    anchors: np.ndarray,
    loc_preds: np.ndarray,
    variances: Tuple[float, float, float, float] = (0.1, 0.1, 0.2, 0.2),
) -> np.ndarray:
    """Decode box regressions against anchors (SSD parameterization).

    Args:
        anchors: (A, 4) anchors as (cx, cy, w, h).
        loc_preds: (N, A, 4) predicted offsets (dx, dy, dw, dh).

    Returns:
        (N, A, 4) decoded boxes as corner coordinates (x1, y1, x2, y2),
        clipped to [0, 1].
    """
    acx, acy, aw, ah = anchors[:, 0], anchors[:, 1], anchors[:, 2], anchors[:, 3]
    dx, dy, dw, dh = (
        loc_preds[..., 0],
        loc_preds[..., 1],
        loc_preds[..., 2],
        loc_preds[..., 3],
    )
    cx = dx * variances[0] * aw + acx
    cy = dy * variances[1] * ah + acy
    w = np.exp(np.clip(dw * variances[2], -10, 10)) * aw
    h = np.exp(np.clip(dh * variances[3], -10, 10)) * ah
    boxes = np.stack(
        [cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0], axis=-1
    )
    return np.clip(boxes, 0.0, 1.0)


def _iou(box: np.ndarray, boxes: np.ndarray) -> np.ndarray:
    """Intersection-over-union of one box against many (corner format)."""
    x1 = np.maximum(box[0], boxes[:, 0])
    y1 = np.maximum(box[1], boxes[:, 1])
    x2 = np.minimum(box[2], boxes[:, 2])
    y2 = np.minimum(box[3], boxes[:, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area_a = (box[2] - box[0]) * (box[3] - box[1])
    area_b = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    union = area_a + area_b - inter
    return np.where(union > 0, inter / union, 0.0)


def non_max_suppression(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.45,
    max_detections: int = 100,
) -> List[int]:
    """Greedy NMS returning the indices of kept boxes, best score first."""
    order = np.argsort(-scores)
    keep: List[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        if len(keep) >= max_detections:
            break
        ious = _iou(boxes[idx], boxes)
        suppressed |= ious > iou_threshold
        suppressed[idx] = True
    return keep


def multibox_detection(
    class_probs: np.ndarray,
    loc_preds: np.ndarray,
    anchors: np.ndarray,
    score_threshold: float = 0.01,
    iou_threshold: float = 0.45,
    max_detections: int = 100,
) -> np.ndarray:
    """Full SSD detection output: decode, threshold and NMS per class.

    Args:
        class_probs: (N, num_classes + 1, A) softmax scores; class 0 is
            background.
        loc_preds: (N, A, 4) box regressions.
        anchors: (A, 4) anchors in center format.

    Returns:
        (N, max_detections, 6) detections as
        (class_id, score, x1, y1, x2, y2); unused slots are filled with -1.
    """
    batch = class_probs.shape[0]
    num_classes = class_probs.shape[1] - 1
    decoded = decode_boxes(anchors, loc_preds)
    output = np.full((batch, max_detections, 6), -1.0, dtype=np.float32)
    for n in range(batch):
        detections: List[Tuple[float, int, np.ndarray]] = []
        for cls in range(1, num_classes + 1):
            scores = class_probs[n, cls]
            mask = scores > score_threshold
            if not np.any(mask):
                continue
            cls_boxes = decoded[n][mask]
            cls_scores = scores[mask]
            keep = non_max_suppression(cls_boxes, cls_scores, iou_threshold, max_detections)
            for idx in keep:
                detections.append((float(cls_scores[idx]), cls - 1, cls_boxes[idx]))
        detections.sort(key=lambda item: -item[0])
        for slot, (score, cls_id, box) in enumerate(detections[:max_detections]):
            output[n, slot, 0] = cls_id
            output[n, slot, 1] = score
            output[n, slot, 2:6] = box
    return output

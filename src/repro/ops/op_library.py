"""Registration of the standard operator set.

Each operator gets a shape-inference function and a layout-aware compute
function, and is classified into one of the three layout categories of
section 3.2.  Importing this module (done by ``repro.ops``) populates the
global registry.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..schedule.template import ConvSchedule
from ..tensor.layout import Layout
from ..tensor.tensor import BatchDim, Tensor, TensorSpec
from ..tensor.transform import transform_tensor
from . import activation, batch_norm, blocked_conv, conv2d, dense, elementwise, pooling
from .conv2d import conv_output_size
from .registry import LayoutCategory, register_op
from .ssd_ops import multibox_detection

__all__ = ["conv_schedule_from_attrs"]


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_schedule_from_attrs(attrs: dict) -> ConvSchedule:
    """Extract the :class:`ConvSchedule` stored on a conv2d node, if any."""
    schedule = attrs.get("schedule")
    if schedule is None:
        raise KeyError("conv2d node has no schedule attribute")
    if isinstance(schedule, ConvSchedule):
        return schedule
    return ConvSchedule.from_dict(schedule)


def _nchw_extents(spec: TensorSpec) -> Tuple[int, int, int, int]:
    """Logical (N, C, H, W) extents of a 4-D feature-map spec in any layout."""
    return (
        spec.axis_extent("N"),
        spec.axis_extent("C"),
        spec.axis_extent("H"),
        spec.axis_extent("W"),
    )


def _is_blocked_feature_map(tensor: Tensor) -> bool:
    return tensor.layout.is_blocked and tensor.layout.has_axis("c")


# --------------------------------------------------------------------------- #
# conv2d
# --------------------------------------------------------------------------- #
def _conv2d_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    data_spec, weight_spec = in_specs[0], in_specs[1]
    n, c, h, w = _nchw_extents(data_spec)
    out_channels = weight_spec.axis_extent("O")
    kernel_h = weight_spec.axis_extent("H")
    kernel_w = weight_spec.axis_extent("W")
    stride = _pair(attrs.get("stride", 1))
    padding = _pair(attrs.get("padding", 0))
    dilation = _pair(attrs.get("dilation", 1))
    groups = int(attrs.get("groups", 1))
    if weight_spec.axis_extent("I") * groups != c:
        raise ValueError(
            f"conv2d channel mismatch: data C={c}, weight I={weight_spec.axis_extent('I')}"
            f" x groups={groups}"
        )
    out_h = conv_output_size(h, kernel_h, stride[0], padding[0], dilation[0])
    out_w = conv_output_size(w, kernel_w, stride[1], padding[1], dilation[1])
    out_layout = Layout(str(attrs.get("out_layout", "NCHW")))
    extents = {"N": n, "C": out_channels, "H": out_h, "W": out_w}
    logical = tuple(extents[a] for a in out_layout.primal_axes)
    return TensorSpec(logical, out_layout, data_spec.dtype)


def _conv2d_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    data, weight = inputs[0], inputs[1]
    bias = inputs[2].data if len(inputs) > 2 else None
    stride = _pair(attrs.get("stride", 1))
    padding = _pair(attrs.get("padding", 0))
    dilation = _pair(attrs.get("dilation", 1))
    groups = int(attrs.get("groups", 1))

    if _is_blocked_feature_map(data):
        # Blocked template path: weights must already be pre-packed.
        schedule = conv_schedule_from_attrs(attrs)
        if not weight.layout.has_axis("i") or not weight.layout.has_axis("o"):
            raise ValueError(
                "blocked conv2d requires pre-packed weights "
                f"(got layout {weight.layout})"
            )
        n, c, h, w = _nchw_extents(data.spec)
        out_channels = weight.spec.axis_extent("O")
        workload = conv2d.workload_from_shapes(
            (n, c, h, w),
            (out_channels, c // groups, weight.spec.axis_extent("H"),
             weight.spec.axis_extent("W")),
            stride,
            padding,
            dilation,
            groups,
        )
        out_blocked = blocked_conv.conv2d_nchwc(
            data.data, weight.data, workload, schedule, bias
        )
        out_layout = f"NCHW{schedule.oc_bn}c"
        return Tensor(out_blocked, out_layout, workload.output_shape)

    # Default NCHW reference path.
    data_nchw = data
    if data.layout != Layout("NCHW"):
        data_nchw = transform_tensor(data, "NCHW")
    weight_oihw = weight
    if weight.layout != Layout("OIHW"):
        weight_oihw = transform_tensor(weight, "OIHW")
    out = conv2d.conv2d_nchw(
        data_nchw.data, weight_oihw.data, stride, padding, dilation, groups, bias
    )
    return Tensor(out, "NCHW")


# --------------------------------------------------------------------------- #
# dense / flatten / reshape / concat
# --------------------------------------------------------------------------- #
def _dense_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    del attrs
    data_spec, weight_spec = in_specs[0], in_specs[1]
    batch = data_spec.logical_shape[0]
    out_features = weight_spec.logical_shape[0]
    return TensorSpec((batch, out_features), "NC", data_spec.dtype)


def _dense_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data, weight = inputs[0], inputs[1]
    bias = inputs[2].data if len(inputs) > 2 else None
    out = dense.dense(data.data, weight.data, bias)
    return Tensor(out, "NC")


def _flatten_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    del attrs
    spec = in_specs[0]
    if spec.layout.is_blocked:
        raise ValueError(
            "flatten is layout-dependent and requires the default layout; "
            "a LayoutTransform must be inserted before it"
        )
    batch = spec.logical_shape[0]
    rest = 1
    for dim in spec.logical_shape[1:]:
        rest *= dim
    return TensorSpec((batch, rest), "NC", spec.dtype)


def _flatten_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data = inputs[0]
    if data.layout.is_blocked:
        raise ValueError(
            "flatten received blocked data; the alter-layout pass should have "
            "inserted a LayoutTransform before this node"
        )
    return Tensor(dense.flatten_nchw(data.data), "NC")


def _concat_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    axis_name = str(attrs.get("axis", "C")).upper()
    base = in_specs[0]
    layout = base.layout
    for spec in in_specs[1:]:
        if spec.layout != layout:
            raise ValueError(
                f"concat requires all inputs in the same layout, got "
                f"{[str(s.layout) for s in in_specs]}"
            )
    extents = dict(zip(layout.primal_axes, base.logical_shape))
    total = sum(spec.axis_extent(axis_name) for spec in in_specs)
    extents[axis_name] = total
    logical = tuple(extents[a] for a in layout.primal_axes)
    if (
        axis_name != "N"
        and not base.batch_polymorphic
        and any(spec.batch_polymorphic for spec in in_specs)
    ):
        # Same operand-order insensitivity as elemwise_add: a batch-free
        # first input must not strip the symbolic batch dim the other
        # inputs carry (TensorSpec demotes the marker if N is not leading).
        logical = (BatchDim(logical[0]),) + logical[1:]
    return TensorSpec(logical, layout, base.dtype)


def _concat_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    axis_name = str(attrs.get("axis", "C")).upper()
    layout = inputs[0].layout
    for tensor in inputs[1:]:
        if tensor.layout != layout:
            raise ValueError("concat requires identical layouts")
    axis_index = layout.axis_index(axis_name)
    if layout.is_blocked and layout.block_factor(axis_name):
        # Concatenate along the *outer* axis; every input's channel count must
        # be divisible by the block (guaranteed after the alter-layout pass).
        pass
    out = np.concatenate([t.data for t in inputs], axis=axis_index)
    total = sum(t.spec.axis_extent(axis_name) for t in inputs)
    extents = dict(zip(layout.primal_axes, inputs[0].logical_shape))
    extents[axis_name] = total
    logical = tuple(extents[a] for a in layout.primal_axes)
    return Tensor(out, layout, logical)


def _transpose_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    spec = in_specs[0]
    axes = tuple(int(a) for a in attrs["axes"])
    if spec.layout.is_blocked:
        raise ValueError("transpose is layout-dependent; un-block the data first")
    if sorted(axes) != list(range(len(spec.logical_shape))):
        raise ValueError(f"invalid transpose axes {axes} for rank {len(spec.logical_shape)}")
    primals = spec.layout.primal_axes
    new_layout = "".join(primals[a] for a in axes)
    # A symbolic batch dim survives iff axes[0] == 0 (the extent objects are
    # permuted as-is; TensorSpec demotes a BatchDim that left the leading N
    # position, so a transpose that moves the batch axis ends batchability).
    new_shape = tuple(spec.logical_shape[a] for a in axes)
    return TensorSpec(new_shape, new_layout, spec.dtype)


def _transpose_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    spec = _transpose_infer(attrs, [inputs[0].spec])
    axes = tuple(int(a) for a in attrs["axes"])
    data = np.ascontiguousarray(np.transpose(inputs[0].data, axes))
    return Tensor(data, spec.layout, spec.logical_shape)


def _reshape_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    """Infer a reshape's output spec, resolving at most one ``-1`` extent.

    A leading ``-1`` that resolves to the input's batch extent keeps the
    batch *symbolic* (:class:`~repro.tensor.tensor.BatchDim`): the node never
    bakes the build-time batch into its attributes, so the same graph serves
    any leading extent — this is how the SSD detection heads stay
    batch-stackable under the dynamic-batching scheduler.  Incompatible
    shapes are rejected here, at graph-build time, instead of producing a
    silently truncated extent.
    """
    spec = in_specs[0]
    new_shape = list(attrs["new_shape"])
    if spec.layout.is_blocked:
        raise ValueError("reshape is layout-dependent; transform to default layout first")
    wildcards = [i for i, dim in enumerate(new_shape) if dim == -1]
    if len(wildcards) > 1:
        raise ValueError(
            f"reshape new_shape {tuple(attrs['new_shape'])} has more than one -1; "
            "at most one extent may be inferred"
        )
    if any(dim == 0 or dim < -1 for dim in new_shape):
        raise ValueError(
            f"reshape new_shape {tuple(attrs['new_shape'])} has non-positive "
            "extents (only -1 may be negative)"
        )
    total = spec.size
    if wildcards:
        known = 1
        for dim in new_shape:
            if dim != -1:
                known *= dim
        if total % known:
            raise ValueError(
                f"cannot reshape {spec.logical_shape} (size {total}) into "
                f"{tuple(attrs['new_shape'])}: {total} is not divisible by the "
                f"known extents' product {known}"
            )
        inferred = total // known
        index = wildcards[0]
        if index == 0 and spec.batch_polymorphic and inferred == spec.logical_shape[0]:
            # The wildcard IS the batch axis (the trailing extents account for
            # exactly one sample): keep it symbolic so downstream nodes — and
            # the batchability probe — see a free leading extent.
            inferred = BatchDim(inferred)
        new_shape[index] = inferred
    else:
        requested = 1
        for dim in new_shape:
            requested *= dim
        if requested != total:
            raise ValueError(
                f"cannot reshape {spec.logical_shape} (size {total}) into "
                f"{tuple(attrs['new_shape'])} (size {requested})"
            )
    layout = "".join("NCHWDEFG"[i] for i in range(len(new_shape)))
    return TensorSpec(tuple(new_shape), layout, spec.dtype)


def _reshape_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    spec = _reshape_infer(attrs, [inputs[0].spec])
    data = dense.reshape(inputs[0].data, spec.logical_shape)
    return Tensor(data, spec.layout, spec.logical_shape)


# --------------------------------------------------------------------------- #
# batch norm / bias add / scale-shift
# --------------------------------------------------------------------------- #
def _same_as_input_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    del attrs
    return in_specs[0]


def _batch_norm_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    data, gamma, beta, mean, var = inputs[:5]
    epsilon = float(attrs.get("epsilon", 1e-5))
    if _is_blocked_feature_map(data):
        out = batch_norm.batch_norm_inference_nchwc(
            data.data, gamma.data, beta.data, mean.data, var.data, epsilon
        )
    else:
        out = batch_norm.batch_norm_inference_nchw(
            data.data, gamma.data, beta.data, mean.data, var.data, epsilon
        )
    return Tensor(out, data.layout, data.logical_shape)


def _bias_add_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data, bias = inputs[0], inputs[1]
    if _is_blocked_feature_map(data):
        out = elementwise.bias_add_nchwc(data.data, bias.data)
    elif data.data.ndim == 2:
        out = data.data + bias.data.reshape(1, -1)
    else:
        out = elementwise.bias_add_nchw(data.data, bias.data)
    return Tensor(out, data.layout, data.logical_shape)


def _scale_shift_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data, scale, shift = inputs[0], inputs[1], inputs[2]
    if _is_blocked_feature_map(data):
        _, c_outer, _, _, c_inner = data.data.shape
        scale_b = scale.data.reshape(1, c_outer, 1, 1, c_inner)
        shift_b = shift.data.reshape(1, c_outer, 1, 1, c_inner)
        out = data.data * scale_b + shift_b
    else:
        out = elementwise.scale_shift_nchw(data.data, scale.data, shift.data)
    return Tensor(out, data.layout, data.logical_shape)


# --------------------------------------------------------------------------- #
# activations / element-wise
# --------------------------------------------------------------------------- #
def _unary_compute(func):
    def compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
        del attrs
        data = inputs[0]
        return Tensor(func(data.data), data.layout, data.logical_shape)

    return compute


def _softmax_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    axis = int(attrs.get("axis", -1))
    data = inputs[0]
    return Tensor(activation.softmax(data.data, axis), data.layout, data.logical_shape)


def _elemwise_add_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    lhs, rhs = inputs[0], inputs[1]
    if lhs.layout != rhs.layout:
        raise ValueError(
            f"elemwise_add requires both operands in the same layout, got "
            f"{lhs.layout} vs {rhs.layout}"
        )
    return Tensor(elementwise.add(lhs.data, rhs.data), lhs.layout, lhs.logical_shape)


def _elemwise_add_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    del attrs
    lhs, rhs = in_specs[0], in_specs[1]
    if lhs.logical_shape != rhs.logical_shape:
        raise ValueError(
            f"elemwise_add shape mismatch: {lhs.logical_shape} vs {rhs.logical_shape}"
        )
    # Operand-order insensitive batch marker: adding a batch-free operand
    # (e.g. a constant table) to a batched one keeps the batch free either
    # way round, so prefer whichever spec carries the symbolic dim.
    if not lhs.batch_polymorphic and rhs.batch_polymorphic:
        return rhs
    return lhs


# --------------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------------- #
def _pool_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    spec = in_specs[0]
    n, c, h, w = _nchw_extents(spec)
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", kernel))
    padding = _pair(attrs.get("padding", 0))
    out_h = conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = conv_output_size(w, kernel[1], stride[1], padding[1])
    extents = {"N": n, "C": c, "H": out_h, "W": out_w}
    logical = tuple(extents[a] for a in spec.layout.primal_axes)
    return TensorSpec(logical, spec.layout, spec.dtype)


def _make_pool_compute(nchw_func, nchwc_func):
    def compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
        data = inputs[0]
        kernel = _pair(attrs["kernel"])
        stride = _pair(attrs.get("stride", kernel))
        padding = _pair(attrs.get("padding", 0))
        if _is_blocked_feature_map(data):
            out = nchwc_func(data.data, kernel, stride, padding)
        else:
            out = nchw_func(data.data, kernel, stride, padding)
        spec = _pool_infer(attrs, [data.spec])
        return Tensor(out, data.layout, spec.logical_shape)

    return compute


def _global_pool_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    del attrs
    spec = in_specs[0]
    n, c, _, _ = _nchw_extents(spec)
    extents = {"N": n, "C": c, "H": 1, "W": 1}
    logical = tuple(extents[a] for a in spec.layout.primal_axes)
    return TensorSpec(logical, spec.layout, spec.dtype)


def _global_pool_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data = inputs[0]
    if _is_blocked_feature_map(data):
        out = pooling.global_avg_pool2d_nchwc(data.data)
    else:
        out = pooling.global_avg_pool2d_nchw(data.data)
    n, c, _, _ = _nchw_extents(data.spec)
    extents = {"N": n, "C": c, "H": 1, "W": 1}
    logical = tuple(extents[a] for a in data.layout.primal_axes)
    return Tensor(out, data.layout, logical)


# --------------------------------------------------------------------------- #
# layout transform / identity-like ops
# --------------------------------------------------------------------------- #
def _layout_transform_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    return in_specs[0].with_layout(Layout(str(attrs["dst_layout"])))


def _layout_transform_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    dst = Layout(str(attrs["dst_layout"]))
    return transform_tensor(inputs[0], dst)


def _dropout_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    del attrs
    data = inputs[0]
    return Tensor(activation.dropout_inference(data.data), data.layout, data.logical_shape)


# --------------------------------------------------------------------------- #
# SSD detection head
# --------------------------------------------------------------------------- #
def _multibox_infer(attrs: dict, in_specs: Sequence[TensorSpec]) -> TensorSpec:
    max_det = int(attrs.get("max_detections", 100))
    batch = in_specs[0].logical_shape[0]
    return TensorSpec((batch, max_det, 6), "NAB", in_specs[0].dtype)


def _multibox_compute(attrs: dict, inputs: Sequence[Tensor]) -> Tensor:
    cls_probs, loc_preds, anchors = inputs[0], inputs[1], inputs[2]
    out = multibox_detection(
        cls_probs.data,
        loc_preds.data,
        anchors.data,
        score_threshold=float(attrs.get("score_threshold", 0.01)),
        iou_threshold=float(attrs.get("iou_threshold", 0.45)),
        max_detections=int(attrs.get("max_detections", 100)),
    )
    return Tensor(out, "NAB")


# --------------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------------- #
register_op(
    "conv2d",
    LayoutCategory.TOLERANT,
    _conv2d_infer,
    _conv2d_compute,
    compute_intensive=True,
)
register_op(
    "dense",
    LayoutCategory.DEPENDENT,
    _dense_infer,
    _dense_compute,
    compute_intensive=True,
)
register_op("flatten", LayoutCategory.DEPENDENT, _flatten_infer, _flatten_compute)
register_op("reshape", LayoutCategory.DEPENDENT, _reshape_infer, _reshape_compute)
register_op("transpose", LayoutCategory.DEPENDENT, _transpose_infer, _transpose_compute)
register_op("concat", LayoutCategory.OBLIVIOUS, _concat_infer, _concat_compute)
register_op(
    "batch_norm",
    LayoutCategory.TOLERANT,
    _same_as_input_infer,
    _batch_norm_compute,
    fusible=True,
)
register_op(
    "bias_add",
    LayoutCategory.TOLERANT,
    _same_as_input_infer,
    _bias_add_compute,
    fusible=True,
)
register_op(
    "scale_shift",
    LayoutCategory.TOLERANT,
    _same_as_input_infer,
    _scale_shift_compute,
    fusible=True,
)
register_op(
    "relu",
    LayoutCategory.OBLIVIOUS,
    _same_as_input_infer,
    _unary_compute(activation.relu),
    fusible=True,
)
register_op(
    "sigmoid",
    LayoutCategory.OBLIVIOUS,
    _same_as_input_infer,
    _unary_compute(activation.sigmoid),
    fusible=True,
)
register_op("softmax", LayoutCategory.OBLIVIOUS, _same_as_input_infer, _softmax_compute)
register_op(
    "elemwise_add",
    LayoutCategory.OBLIVIOUS,
    _elemwise_add_infer,
    _elemwise_add_compute,
    fusible=True,
    num_inputs=2,
)
register_op(
    "max_pool2d",
    LayoutCategory.TOLERANT,
    _pool_infer,
    _make_pool_compute(pooling.max_pool2d_nchw, pooling.max_pool2d_nchwc),
)
register_op(
    "avg_pool2d",
    LayoutCategory.TOLERANT,
    _pool_infer,
    _make_pool_compute(pooling.avg_pool2d_nchw, pooling.avg_pool2d_nchwc),
)
register_op(
    "global_avg_pool2d",
    LayoutCategory.TOLERANT,
    _global_pool_infer,
    _global_pool_compute,
)
register_op(
    "layout_transform",
    LayoutCategory.DEPENDENT,
    _layout_transform_infer,
    _layout_transform_compute,
)
register_op("dropout", LayoutCategory.OBLIVIOUS, _same_as_input_infer, _dropout_compute)
register_op(
    "multibox_detection",
    LayoutCategory.DEPENDENT,
    _multibox_infer,
    _multibox_compute,
)

"""Operator registry.

Every operator known to the graph IR is described by an :class:`OpDef`:

* its **layout category** — layout-oblivious, layout-tolerant or
  layout-dependent, exactly the three classes of section 3.2 of the paper.
  The alter-layout pass uses this to decide where LayoutTransform nodes are
  required;
* a **shape-inference function** mapping input :class:`TensorSpec`\\ s (plus
  node attributes) to the output spec;
* a **compute function** executing the operator on concrete, layout-annotated
  :class:`Tensor`\\ s;
* whether the operator is **compute-intensive** (a tuning target for the local
  search) and whether it can be **fused** into a preceding compute-intensive op.

The standard operator set is registered by :mod:`repro.ops.op_library`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..tensor.tensor import Tensor, TensorSpec

__all__ = ["LayoutCategory", "OpDef", "OpRegistry", "registry", "register_op", "get_op"]

InferFunc = Callable[[dict, Sequence[TensorSpec]], TensorSpec]
ComputeFunc = Callable[[dict, Sequence[Tensor]], Tensor]


class LayoutCategory(enum.Enum):
    """How an operator interacts with data layouts (paper section 3.2)."""

    #: Processes data without knowledge of its layout (ReLU, Softmax, ...).
    OBLIVIOUS = "oblivious"
    #: Needs to know the layout but handles several (CONV, Pooling, BN, ...).
    TOLERANT = "tolerant"
    #: Works in exactly one layout; requires a transform before it (Flatten, ...).
    DEPENDENT = "dependent"


@dataclass
class OpDef:
    """Definition of one operator type.

    Attributes:
        name: unique operator name used by graph nodes.
        category: layout interaction class.
        infer_shape: shape/layout inference callable.
        compute: concrete execution callable.
        compute_intensive: True for operators the local search tunes (conv2d,
            dense).  These anchor fusion groups.
        fusible: True when the operator can be fused into a preceding
            compute-intensive operator (element-wise ops, BN, ReLU, bias add).
        num_inputs: expected input arity; ``None`` means variadic.
    """

    name: str
    category: LayoutCategory
    infer_shape: InferFunc
    compute: ComputeFunc
    compute_intensive: bool = False
    fusible: bool = False
    num_inputs: Optional[int] = None


class OpRegistry:
    """A mutable mapping of operator name to :class:`OpDef`."""

    def __init__(self) -> None:
        self._ops: Dict[str, OpDef] = {}

    def register(self, op_def: OpDef, override: bool = False) -> OpDef:
        if op_def.name in self._ops and not override:
            raise ValueError(f"operator {op_def.name!r} is already registered")
        self._ops[op_def.name] = op_def
        return op_def

    def get(self, name: str) -> OpDef:
        try:
            return self._ops[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown operator {name!r}; registered: {sorted(self._ops)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> List[str]:
        return sorted(self._ops)

    def by_category(self, category: LayoutCategory) -> List[OpDef]:
        return [op for op in self._ops.values() if op.category is category]


#: Global registry used by the graph IR and executor.
registry = OpRegistry()


def register_op(
    name: str,
    category: LayoutCategory,
    infer_shape: InferFunc,
    compute: ComputeFunc,
    compute_intensive: bool = False,
    fusible: bool = False,
    num_inputs: Optional[int] = None,
    override: bool = False,
) -> OpDef:
    """Register an operator in the global registry (convenience wrapper)."""
    op_def = OpDef(
        name=name,
        category=category,
        infer_shape=infer_shape,
        compute=compute,
        compute_intensive=compute_intensive,
        fusible=fusible,
        num_inputs=num_inputs,
    )
    return registry.register(op_def, override=override)


def get_op(name: str) -> OpDef:
    """Look up an operator definition in the global registry."""
    return registry.get(name)

"""Pooling operators (layout-tolerant, section 3.2 category 2).

Max and average pooling are implemented for both the default ``NCHW`` layout
and the blocked ``NCHW[x]c`` layout.  Because pooling reduces only over the
spatial window, it can consume whatever channel blocking the upstream
convolution produced — this is what lets NeoCPU keep the blocked layout
flowing through the graph without inserting transforms around pooling nodes.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .conv2d import conv_output_size

__all__ = [
    "max_pool2d_nchw",
    "avg_pool2d_nchw",
    "max_pool2d_nchwc",
    "avg_pool2d_nchwc",
    "global_avg_pool2d_nchw",
    "global_avg_pool2d_nchwc",
]

PairLike = Union[int, Tuple[int, int]]


def _pair(value: PairLike) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _pool_nchw(
    data: np.ndarray,
    kernel: PairLike,
    stride: PairLike,
    padding: PairLike,
    reducer: str,
    count_include_pad: bool,
) -> np.ndarray:
    k_h, k_w = _pair(kernel)
    s_h, s_w = _pair(stride)
    p_h, p_w = _pair(padding)
    batch, channels, in_h, in_w = data.shape
    out_h = conv_output_size(in_h, k_h, s_h, p_h)
    out_w = conv_output_size(in_w, k_w, s_w, p_w)

    if p_h or p_w:
        fill = -np.inf if reducer == "max" else 0.0
        padded = np.full(
            (batch, channels, in_h + 2 * p_h, in_w + 2 * p_w), fill, dtype=data.dtype
        )
        padded[:, :, p_h : p_h + in_h, p_w : p_w + in_w] = data
    else:
        padded = data

    out = np.empty((batch, channels, out_h, out_w), dtype=data.dtype)
    for oh in range(out_h):
        for ow in range(out_w):
            window = padded[
                :, :, oh * s_h : oh * s_h + k_h, ow * s_w : ow * s_w + k_w
            ]
            if reducer == "max":
                out[:, :, oh, ow] = window.max(axis=(2, 3))
            else:
                if count_include_pad:
                    out[:, :, oh, ow] = window.mean(axis=(2, 3))
                else:
                    # Count only positions that fall inside the original image.
                    h0, w0 = oh * s_h, ow * s_w
                    valid_h = min(h0 + k_h, p_h + in_h) - max(h0, p_h)
                    valid_w = min(w0 + k_w, p_w + in_w) - max(w0, p_w)
                    denom = max(1, valid_h * valid_w)
                    out[:, :, oh, ow] = window.sum(axis=(2, 3)) / denom
    return out


def max_pool2d_nchw(
    data: np.ndarray, kernel: PairLike, stride: PairLike = 1, padding: PairLike = 0
) -> np.ndarray:
    """Max pooling on an NCHW tensor."""
    return _pool_nchw(data, kernel, stride, padding, "max", count_include_pad=True)


def avg_pool2d_nchw(
    data: np.ndarray,
    kernel: PairLike,
    stride: PairLike = 1,
    padding: PairLike = 0,
    count_include_pad: bool = False,
) -> np.ndarray:
    """Average pooling on an NCHW tensor."""
    return _pool_nchw(data, kernel, stride, padding, "avg", count_include_pad)


def _blocked_to_pseudo_nchw(data: np.ndarray) -> Tuple[np.ndarray, int]:
    """View (N, C_outer, H, W, c) as (N*C_outer*c-merged) NCHW-like tensor.

    Pooling treats each blocked channel lane independently, so we can fold the
    inner channel axis into the outer channel axis, run the NCHW kernel, and
    unfold again.  Returns the folded tensor and the block size.
    """
    n, c_outer, h, w, c_inner = data.shape
    folded = np.ascontiguousarray(np.moveaxis(data, 4, 2)).reshape(
        n, c_outer * c_inner, h, w
    )
    return folded, c_inner


def _pseudo_nchw_to_blocked(data: np.ndarray, block: int) -> np.ndarray:
    n, c_total, h, w = data.shape
    unfolded = data.reshape(n, c_total // block, block, h, w)
    return np.ascontiguousarray(np.moveaxis(unfolded, 2, 4))


def max_pool2d_nchwc(
    data: np.ndarray, kernel: PairLike, stride: PairLike = 1, padding: PairLike = 0
) -> np.ndarray:
    """Max pooling on an ``NCHW[x]c`` tensor, preserving the blocked layout."""
    folded, block = _blocked_to_pseudo_nchw(data)
    pooled = max_pool2d_nchw(folded, kernel, stride, padding)
    return _pseudo_nchw_to_blocked(pooled, block)


def avg_pool2d_nchwc(
    data: np.ndarray,
    kernel: PairLike,
    stride: PairLike = 1,
    padding: PairLike = 0,
    count_include_pad: bool = False,
) -> np.ndarray:
    """Average pooling on an ``NCHW[x]c`` tensor, preserving the blocked layout."""
    folded, block = _blocked_to_pseudo_nchw(data)
    pooled = avg_pool2d_nchw(folded, kernel, stride, padding, count_include_pad)
    return _pseudo_nchw_to_blocked(pooled, block)


def global_avg_pool2d_nchw(data: np.ndarray) -> np.ndarray:
    """Global average pooling: (N, C, H, W) -> (N, C, 1, 1)."""
    return data.mean(axis=(2, 3), keepdims=True)


def global_avg_pool2d_nchwc(data: np.ndarray) -> np.ndarray:
    """Global average pooling on blocked data: (N, Co, H, W, c) -> (N, Co, 1, 1, c)."""
    return data.mean(axis=(2, 3), keepdims=True)

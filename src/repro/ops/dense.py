"""Dense (fully-connected) layer and flatten/reshape/concat operators.

``Flatten`` is the canonical layout-dependent operation of section 3.2: it
interprets the memory order of its input, so the blocked ``NCHW[x]c`` layout
must be transformed back to ``NCHW`` before it.  ``Concat`` is layout-
oblivious provided all inputs share one layout and the concatenation axis is
the (outer) channel axis.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["dense", "flatten_nchw", "reshape", "concat_channels_nchw", "concat"]


def dense(
    data: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fully connected layer: ``(N, I) x (O, I)^T -> (N, O)``."""
    if data.ndim != 2:
        raise ValueError(f"dense expects 2-D input (N, I), got shape {data.shape}")
    if weight.ndim != 2 or weight.shape[1] != data.shape[1]:
        raise ValueError(
            f"dense weight shape {weight.shape} incompatible with input {data.shape}"
        )
    if data.shape[0] <= 1:
        out = data @ weight.T
    else:
        # Row-at-a-time matmul keeps the result batch-invariant: each row goes
        # through the exact (1, I) @ (I, O) BLAS call a single-request
        # execution makes, whereas a full (N, I) gemm may pick a different
        # kernel (and accumulation order) per N.  The serving scheduler relies
        # on this to keep dynamically batched outputs byte-identical to
        # sequential runs; the dense layers of the model zoo are a negligible
        # slice of inference time, so the per-row dispatch overhead is noise.
        out = np.empty(
            (data.shape[0], weight.shape[0]), dtype=np.result_type(data, weight)
        )
        for row in range(data.shape[0]):
            out[row] = data[row : row + 1] @ weight.T
    if bias is not None:
        out = out + bias.reshape(1, -1)
    return out


def flatten_nchw(data: np.ndarray) -> np.ndarray:
    """Flatten an NCHW tensor to (N, C*H*W).

    This operator is layout-dependent: callers must supply data in the default
    NCHW layout (the alter-layout pass inserts the required LayoutTransform).
    """
    if data.ndim < 2:
        raise ValueError(f"flatten expects at least 2-D input, got {data.shape}")
    return np.ascontiguousarray(data).reshape(data.shape[0], -1)


def reshape(data: np.ndarray, new_shape: Sequence[int]) -> np.ndarray:
    """Reshape, with a single -1 wildcard supported."""
    return np.ascontiguousarray(data).reshape(tuple(int(d) for d in new_shape))


def concat_channels_nchw(tensors: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate NCHW tensors along the channel axis (DenseNet blocks)."""
    return np.concatenate(list(tensors), axis=1)


def concat(tensors: Sequence[np.ndarray], axis: int = 1) -> np.ndarray:
    """General concatenation along ``axis``."""
    return np.concatenate(list(tensors), axis=axis)

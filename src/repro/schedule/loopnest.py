"""Loop-nest model of the convolution template (Algorithm 1 of the paper).

The analytical cost model needs to know, for a given (workload, schedule)
pair, how many iterations each loop of the template executes, which loops are
parallelized / unrolled / vectorized, and what the working set touched inside
each loop level is.  Rather than hard-coding those formulas in the cost model
we build an explicit loop-nest description — this doubles as executable
documentation of Algorithm 1 and is handy for debugging schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .template import ConvSchedule
from .workload import ConvWorkload

__all__ = [
    "Loop",
    "LoopNest",
    "build_conv_loopnest",
    "conv_parallel_chunks",
    "conv_parallel_chunks_for_oc_bn",
]


@dataclass(frozen=True)
class Loop:
    """One loop level of the nest.

    Attributes:
        name: loop variable name, matching Algorithm 1 where possible
            (``oc.outer``, ``ow.outer``, ``ic.outer``, ``kh``, ``kw``,
            ``ic.inner``, ``ow.inner``, ``oc.inner``).
        extent: trip count.
        kind: ``"serial"``, ``"parallel"``, ``"unrolled"`` or ``"vectorized"``.
    """

    name: str
    extent: int
    kind: str = "serial"

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise ValueError(f"loop {self.name!r} has non-positive extent {self.extent}")
        if self.kind not in ("serial", "parallel", "unrolled", "vectorized"):
            raise ValueError(f"unknown loop kind {self.kind!r}")


@dataclass
class LoopNest:
    """An ordered list of loops, outermost first, plus body statistics."""

    loops: List[Loop] = field(default_factory=list)
    body_fma_ops: int = 1
    body_loads: int = 1
    body_stores: int = 0

    @property
    def total_iterations(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.extent
        return total

    @property
    def innermost_vector_extent(self) -> int:
        for loop in reversed(self.loops):
            if loop.kind == "vectorized":
                return loop.extent
        return 1

    @property
    def parallel_extent(self) -> int:
        """Iterations of the outermost parallel loop (work items for threads)."""
        for loop in self.loops:
            if loop.kind == "parallel":
                return loop.extent
        return 1

    def loop(self, name: str) -> Loop:
        for loop in self.loops:
            if loop.name == name:
                return loop
        raise KeyError(f"no loop named {name!r} in nest {[l.name for l in self.loops]}")

    def trip_counts(self) -> Tuple[Tuple[str, int], ...]:
        return tuple((loop.name, loop.extent) for loop in self.loops)

    def describe(self) -> str:
        """Human-readable nesting, one loop per line, for debugging/docs."""
        lines = []
        for depth, loop in enumerate(self.loops):
            prefix = "  " * depth
            lines.append(f"{prefix}for {loop.name} in 0..{loop.extent}  # {loop.kind}")
        lines.append("  " * len(self.loops) + f"body: {self.body_fma_ops} FMA lanes")
        return "\n".join(lines)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def build_conv_loopnest(workload: ConvWorkload, schedule: ConvSchedule) -> LoopNest:
    """Construct the loop nest of Algorithm 1 for a (workload, schedule) pair.

    The nest mirrors the paper's template::

        parallel for n, oc.outer, oh:             # disjoint output chunks
          for ow.outer:
            init reg_n output vectors
            for ic.outer:
              for kh, kw:                         # optionally unrolled
                for ic.inner:
                  vload kernel vector (oc_bn lanes)
                  for ow.inner in 0..reg_n:       # unrolled
                    vfmadd
            store reg_n output vectors

    Output-width remainder tiles (``out_width % reg_n != 0``) are folded into
    the ``ow.outer`` trip count via ceiling division.
    """
    in_channels = workload.in_channels // workload.groups
    out_channels = workload.out_channels // workload.groups
    kernel_kind = "unrolled" if schedule.unroll_ker else "serial"

    loops = [
        Loop("n", workload.batch, "parallel"),
        Loop("g", workload.groups, "serial"),
        Loop("oc.outer", out_channels // schedule.oc_bn, "parallel"),
        Loop("oh", workload.out_height, "parallel"),
        Loop("ow.outer", _ceil_div(workload.out_width, schedule.reg_n), "serial"),
        Loop("ic.outer", in_channels // schedule.ic_bn, "serial"),
        Loop("kh", workload.kernel_h, kernel_kind),
        Loop("kw", workload.kernel_w, kernel_kind),
        Loop("ic.inner", schedule.ic_bn, "serial"),
        Loop("ow.inner", schedule.reg_n, "unrolled"),
        Loop("oc.inner", schedule.oc_bn, "vectorized"),
    ]
    nest = LoopNest(loops=loops, body_fma_ops=1, body_loads=1, body_stores=0)
    return nest


def conv_parallel_chunks(workload: ConvWorkload, schedule: ConvSchedule) -> int:
    """Number of disjoint output chunks available for thread-level parallelism.

    The paper parallelizes "each disjoint chunk of OFMAP" (Algorithm 1 line 8);
    we count batch x outer-output-channel x output-height chunks, which is what
    the runtime splits across the thread pool.
    """
    return conv_parallel_chunks_for_oc_bn(workload, schedule.oc_bn)


def conv_parallel_chunks_for_oc_bn(workload: ConvWorkload, oc_bn):
    """Chunk-count formula over a scalar or array of ``oc_bn`` values.

    Single definition shared by :func:`conv_parallel_chunks` and the batched
    conv cost model (which passes the whole candidate grid's ``oc_bn`` array),
    so the two can never drift apart.
    """
    out_channels = workload.out_channels // workload.groups
    return workload.batch * workload.groups * (out_channels // oc_bn) * workload.out_height

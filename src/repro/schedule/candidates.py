"""Candidate generation for the local search (section 3.3.1).

The paper defines the search space for one convolution workload as the cross
product of

1. ``ic_bn`` — every factor of the number of input channels;
2. ``oc_bn`` — every factor of the number of output channels;
3. ``reg_n`` — chosen from ``[32, 16, 8, 4, 2]``;
4. ``unroll_ker`` — ``[True, False]``.

This module enumerates that space (optionally pruned to keep the grid search
tractable for very deep models) in a deterministic order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .template import ConvSchedule
from .workload import ConvWorkload

__all__ = [
    "factors",
    "candidate_ic_bn",
    "candidate_oc_bn",
    "candidate_reg_n",
    "generate_candidates",
    "candidate_grid",
    "candidate_count",
]

DEFAULT_REG_N_CANDIDATES: Sequence[int] = (32, 16, 8, 4, 2)


def factors(value: int) -> List[int]:
    """All positive divisors of ``value`` in descending order.

    The paper lists candidates from large to small (e.g. 64 channels ->
    ``[32, 16, 8, 4, 2, 1]``, excluding the full channel count is *not* done
    here — we include it and let the search decide).
    """
    if value < 1:
        raise ValueError(f"value must be positive, got {value}")
    result = [d for d in range(1, value + 1) if value % d == 0]
    return sorted(result, reverse=True)


def candidate_ic_bn(workload: ConvWorkload, max_block: Optional[int] = None) -> List[int]:
    """Candidate input-channel block sizes for a workload."""
    per_group = workload.in_channels // workload.groups
    cands = factors(per_group)
    if max_block is not None:
        cands = [c for c in cands if c <= max_block] or [min(cands)]
    return cands


def candidate_oc_bn(workload: ConvWorkload, max_block: Optional[int] = None) -> List[int]:
    """Candidate output-channel block sizes for a workload."""
    per_group = workload.out_channels // workload.groups
    cands = factors(per_group)
    if max_block is not None:
        cands = [c for c in cands if c <= max_block] or [min(cands)]
    return cands


def candidate_reg_n(
    workload: ConvWorkload,
    reg_n_candidates: Sequence[int] = DEFAULT_REG_N_CANDIDATES,
) -> List[int]:
    """Candidate register-blocking factors, bounded by the output width."""
    valid = [r for r in reg_n_candidates if r <= workload.out_width]
    if not valid:
        valid = [1]
    return list(valid)


def generate_candidates(
    workload: ConvWorkload,
    reg_n_candidates: Sequence[int] = DEFAULT_REG_N_CANDIDATES,
    unroll_candidates: Iterable[bool] = (True, False),
    max_block: Optional[int] = 64,
) -> Iterator[ConvSchedule]:
    """Yield every schedule in the (optionally pruned) search space.

    Args:
        workload: the convolution workload being tuned.
        reg_n_candidates: register-blocking candidates (paper default).
        unroll_candidates: values of ``unroll_ker`` to try.
        max_block: upper bound on channel block sizes.  The paper enumerates
            *all* factors; in practice factors above 64 blow past any L1 cache
            and only slow the grid search down, so we prune them by default.
            Pass ``None`` to reproduce the unpruned space.
    """
    ic_cands = candidate_ic_bn(workload, max_block)
    oc_cands = candidate_oc_bn(workload, max_block)
    reg_cands = candidate_reg_n(workload, reg_n_candidates)
    unrolls = list(unroll_candidates)
    for ic_bn in ic_cands:
        for oc_bn in oc_cands:
            for reg_n in reg_cands:
                for unroll in unrolls:
                    yield ConvSchedule(
                        ic_bn=ic_bn, oc_bn=oc_bn, reg_n=reg_n, unroll_ker=unroll
                    )


def candidate_grid(
    workload: ConvWorkload,
    reg_n_candidates: Sequence[int] = DEFAULT_REG_N_CANDIDATES,
    unroll_candidates: Iterable[bool] = (True, False),
    max_block: Optional[int] = 64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The full candidate space as four flat arrays (no schedule objects).

    Returns ``(ic_bn, oc_bn, reg_n, unroll_ker)`` arrays whose ``i``-th
    entries describe the ``i``-th candidate of :func:`generate_candidates`,
    in exactly the same nested-loop order.  This is the array-native fast
    path of the batched local search: the tuner scores the whole grid in one
    cost-model pass and only materializes :class:`ConvSchedule` objects for
    the winners.  Every candidate in the grid satisfies the divisibility
    constraints of ``validate_schedule`` by construction (blocks are channel
    factors, ``reg_n`` is bounded by the output width).
    """
    ic = np.array(candidate_ic_bn(workload, max_block), dtype=np.int64)
    oc = np.array(candidate_oc_bn(workload, max_block), dtype=np.int64)
    reg = np.array(candidate_reg_n(workload, reg_n_candidates), dtype=np.int64)
    unroll = np.array(list(unroll_candidates), dtype=bool)
    grids = np.meshgrid(ic, oc, reg, unroll, indexing="ij")
    return tuple(g.ravel() for g in grids)


def candidate_count(
    workload: ConvWorkload,
    reg_n_candidates: Sequence[int] = DEFAULT_REG_N_CANDIDATES,
    max_block: Optional[int] = 64,
) -> int:
    """Size of the local-search space for ``workload`` (paper: ~O(100))."""
    return (
        len(candidate_ic_bn(workload, max_block))
        * len(candidate_oc_bn(workload, max_block))
        * len(candidate_reg_n(workload, reg_n_candidates))
        * 2
    )

"""Convolution schedule substrate: workloads, template configs, candidates.

Implements the configurable template of section 3.1.1 of the paper and the
candidate space of section 3.3.1.
"""

from .candidates import (
    DEFAULT_REG_N_CANDIDATES,
    candidate_count,
    candidate_ic_bn,
    candidate_oc_bn,
    candidate_reg_n,
    factors,
    generate_candidates,
)
from .loopnest import Loop, LoopNest, build_conv_loopnest, conv_parallel_chunks
from .template import ConvSchedule, default_schedule, validate_schedule
from .workload import ConvWorkload, DenseWorkload

__all__ = [
    "DEFAULT_REG_N_CANDIDATES",
    "ConvSchedule",
    "ConvWorkload",
    "DenseWorkload",
    "Loop",
    "LoopNest",
    "build_conv_loopnest",
    "candidate_count",
    "candidate_ic_bn",
    "candidate_oc_bn",
    "candidate_reg_n",
    "conv_parallel_chunks",
    "default_schedule",
    "factors",
    "generate_candidates",
    "validate_schedule",
]

"""Convolution workload descriptors.

A *workload* identifies a convolution purely by its shape parameters — batch,
feature-map size, channel counts, kernel size, stride, padding, dilation and
group count.  Section 3.3.1 of the paper keys the tuning database on "the
feature map and convolution kernel sizes" so that the local search for one
workload can be reused by every model containing that workload on the same
CPU type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["ConvWorkload", "DenseWorkload"]


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


@dataclass(frozen=True)
class ConvWorkload:
    """Shape signature of a 2D convolution.

    Attributes:
        batch: batch size N (the paper fixes N = 1 for latency experiments).
        in_channels: number of input channels C.
        in_height / in_width: spatial size of the input feature map.
        out_channels: number of kernels K.
        kernel_h / kernel_w: kernel spatial size R x S.
        stride: (stride_h, stride_w).
        padding: (pad_h, pad_w), symmetric.
        dilation: (dilation_h, dilation_w).
        groups: group count (1 for dense conv; used by grouped/depthwise conv).
    """

    batch: int
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    dilation: Tuple[int, int] = (1, 1)
    groups: int = 1

    def __post_init__(self) -> None:
        # Batch-polymorphic graphs carry a symbolic BatchDim in their specs;
        # workloads (and therefore tuning-database keys and cost estimates)
        # are always priced at the concrete nominal extent.  The blocked
        # kernels are batch-invariant, so a schedule tuned at the nominal
        # batch is the right schedule for any stacked batch.
        object.__setattr__(self, "batch", int(self.batch))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        object.__setattr__(self, "dilation", _pair(self.dilation))
        if self.batch < 1 or self.in_channels < 1 or self.out_channels < 1:
            raise ValueError(f"invalid workload dimensions: {self}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"channels ({self.in_channels}, {self.out_channels}) must be "
                f"divisible by groups={self.groups}"
            )

    # ------------------------------------------------------------------ #
    # derived shapes
    # ------------------------------------------------------------------ #
    @property
    def out_height(self) -> int:
        effective_kh = (self.kernel_h - 1) * self.dilation[0] + 1
        return (self.in_height + 2 * self.padding[0] - effective_kh) // self.stride[0] + 1

    @property
    def out_width(self) -> int:
        effective_kw = (self.kernel_w - 1) * self.dilation[1] + 1
        return (self.in_width + 2 * self.padding[1] - effective_kw) // self.stride[1] + 1

    @property
    def input_shape(self) -> Tuple[int, int, int, int]:
        """NCHW input shape."""
        return (self.batch, self.in_channels, self.in_height, self.in_width)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """OIHW weight shape (per-group input channels)."""
        return (
            self.out_channels,
            self.in_channels // self.groups,
            self.kernel_h,
            self.kernel_w,
        )

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """NCHW output shape."""
        return (self.batch, self.out_channels, self.out_height, self.out_width)

    @property
    def flops(self) -> int:
        """Total multiply-add operation count, counted as 2 flops each."""
        macs = (
            self.batch
            * self.out_channels
            * self.out_height
            * self.out_width
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
        )
        return 2 * macs

    def bytes_accessed(self, dtype_bytes: int = 4) -> int:
        """Compulsory memory traffic: read input + weights, write output once."""
        in_elems = self.batch * self.in_channels * self.in_height * self.in_width
        w_elems = (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
        )
        out_elems = self.batch * self.out_channels * self.out_height * self.out_width
        return (in_elems + w_elems + out_elems) * dtype_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of compulsory traffic (roofline x-coordinate)."""
        return self.flops / max(1, self.bytes_accessed())

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.in_channels and self.groups == self.out_channels

    @property
    def is_1x1(self) -> bool:
        return self.kernel_h == 1 and self.kernel_w == 1

    def key(self) -> str:
        """Stable string key used by the tuning database."""
        return (
            f"conv2d_n{self.batch}_c{self.in_channels}_h{self.in_height}"
            f"_w{self.in_width}_k{self.out_channels}_r{self.kernel_h}"
            f"_s{self.kernel_w}_st{self.stride[0]}x{self.stride[1]}"
            f"_pad{self.padding[0]}x{self.padding[1]}"
            f"_dil{self.dilation[0]}x{self.dilation[1]}_g{self.groups}"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.key()


@dataclass(frozen=True)
class DenseWorkload:
    """Shape signature of a fully-connected (dense / matmul) layer."""

    batch: int
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        # Same normalization as ConvWorkload: price at the nominal batch.
        object.__setattr__(self, "batch", int(self.batch))

    @property
    def flops(self) -> int:
        return 2 * self.batch * self.in_features * self.out_features

    def bytes_accessed(self, dtype_bytes: int = 4) -> int:
        elems = (
            self.batch * self.in_features
            + self.in_features * self.out_features
            + self.batch * self.out_features
        )
        return elems * dtype_bytes

    def key(self) -> str:
        return f"dense_n{self.batch}_in{self.in_features}_out{self.out_features}"

"""The configurable convolution schedule template.

Section 3.1.1 of the paper (Algorithm 1) expresses the direct convolution as
a template parameterized by a tuple ``(ic_bn, oc_bn, reg_n, unroll_ker)``:

* ``ic_bn`` — split factor of the input channel (the ``x`` in ``NCHW[x]c`` of
  the *input* feature map and in ``KCRS[x]c...`` of the kernel);
* ``oc_bn`` — split factor of the output channel (the ``y`` in the output
  ``NCHW[y]c`` and in ``KCRS...[y]k``);
* ``reg_n`` — register-blocking factor of the output width: how many output
  pixels are accumulated simultaneously in vector registers;
* ``unroll_ker`` — whether the kernel-height/width loops are unrolled.

A :class:`ConvSchedule` is pure configuration; it is consumed by the blocked
convolution kernel (functional execution), by the loop-nest model and by the
analytical cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from .workload import ConvWorkload

__all__ = ["ConvSchedule", "validate_schedule", "default_schedule"]


@dataclass(frozen=True)
class ConvSchedule:
    """One point of the convolution optimization space.

    Attributes:
        ic_bn: input-channel block size (``x`` in ``NCHW[x]c``).
        oc_bn: output-channel block size (``y`` in ``NCHW[y]c``).
        reg_n: output-width register-blocking factor.
        unroll_ker: unroll the kernel loops in the micro-kernel.
    """

    ic_bn: int
    oc_bn: int
    reg_n: int
    unroll_ker: bool = False

    def __post_init__(self) -> None:
        for name in ("ic_bn", "oc_bn", "reg_n"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")

    # ------------------------------------------------------------------ #
    # layouts implied by this schedule
    # ------------------------------------------------------------------ #
    @property
    def input_layout(self) -> str:
        """Feature-map layout consumed by the convolution."""
        return f"NCHW{self.ic_bn}c"

    @property
    def output_layout(self) -> str:
        """Feature-map layout produced by the convolution."""
        return f"NCHW{self.oc_bn}c"

    @property
    def weight_layout(self) -> str:
        """Pre-transformed kernel layout (``KCRS[x]c[y]k`` in paper notation)."""
        return f"OIHW{self.ic_bn}i{self.oc_bn}o"

    def as_tuple(self) -> Tuple[int, int, int, bool]:
        return (self.ic_bn, self.oc_bn, self.reg_n, self.unroll_ker)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ic_bn": self.ic_bn,
            "oc_bn": self.oc_bn,
            "reg_n": self.reg_n,
            "unroll_ker": self.unroll_ker,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ConvSchedule":
        return cls(
            ic_bn=int(data["ic_bn"]),
            oc_bn=int(data["oc_bn"]),
            reg_n=int(data["reg_n"]),
            unroll_ker=bool(data["unroll_ker"]),
        )

    def with_(self, **changes) -> "ConvSchedule":
        """Functional update helper (e.g. ``schedule.with_(reg_n=8)``)."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ConvSchedule(ic_bn={self.ic_bn}, oc_bn={self.oc_bn}, "
            f"reg_n={self.reg_n}, unroll_ker={self.unroll_ker})"
        )


def validate_schedule(schedule: ConvSchedule, workload: ConvWorkload) -> None:
    """Check the divisibility constraints of Algorithm 1.

    The template requires ``in_channel mod ic_bn == 0`` and
    ``out_channel mod oc_bn == 0``.  ``out_width mod reg_n`` is *not* required
    to be zero — the functional kernel and the cost model both handle a
    remainder tile — but reg_n larger than out_width is rejected.

    Raises:
        ValueError: when a constraint is violated.
    """
    in_channels = workload.in_channels // workload.groups
    if in_channels % schedule.ic_bn:
        raise ValueError(
            f"in_channels {in_channels} not divisible by ic_bn={schedule.ic_bn}"
        )
    if (workload.out_channels // workload.groups) % schedule.oc_bn:
        raise ValueError(
            f"out_channels {workload.out_channels} not divisible by "
            f"oc_bn={schedule.oc_bn}"
        )
    if schedule.reg_n > max(1, workload.out_width):
        raise ValueError(
            f"reg_n={schedule.reg_n} exceeds out_width={workload.out_width}"
        )


def _largest_factor_at_most(value: int, bound: int) -> int:
    """Largest divisor of ``value`` that is <= ``bound`` (at least 1)."""
    best = 1
    for candidate in range(1, min(value, bound) + 1):
        if value % candidate == 0:
            best = candidate
    return best


def default_schedule(
    workload: ConvWorkload,
    simd_lanes: int = 16,
    reg_n_candidates: Iterable[int] = (32, 16, 8, 4, 2, 1),
) -> ConvSchedule:
    """A reasonable hand-picked schedule, used before/without tuning.

    This mimics what a library such as MKL-DNN hard-codes: channel blocks equal
    to the SIMD width (falling back to the largest divisor when the channel
    count is not a multiple), and the largest register-blocking factor that
    divides the output width.
    """
    in_channels = workload.in_channels // workload.groups
    out_channels = workload.out_channels // workload.groups
    ic_bn = _largest_factor_at_most(in_channels, simd_lanes)
    oc_bn = _largest_factor_at_most(out_channels, simd_lanes)
    reg_n: Optional[int] = None
    for candidate in reg_n_candidates:
        if candidate <= workload.out_width and workload.out_width % candidate == 0:
            reg_n = candidate
            break
    if reg_n is None:
        reg_n = 1
    return ConvSchedule(ic_bn=ic_bn, oc_bn=oc_bn, reg_n=reg_n, unroll_ker=True)

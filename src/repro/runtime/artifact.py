"""Durable compiled-module artifacts.

The paper's value proposition is compile-once/serve-forever: the expensive
joint schedule search happens at compilation time, and the result is a
standalone module that can be deployed.  This module gives that workflow a
durable on-disk form: :func:`save_module` / :func:`load_module` round-trip a
:class:`~repro.runtime.module.CompiledModule` — optimized graph, chosen
per-convolution schedules, pre-transformed parameter values, search method,
target description and compile configuration — through a single artifact
file.

Artifact file format (version 2)
--------------------------------

``NEOCPU-ARTIFACT\\n`` magic, one line of JSON manifest, then the payloads.
Version 2 makes the container *multi-target*: the manifest carries a
``targets`` list — one entry per compiled target with its CPU identity
summary, compilation fingerprint, payload byte count and SHA-256 — followed
by the per-target module pickles concatenated in manifest order, and
optionally one trailing *source* payload (the uncompiled graph + bound
params + config) that lets a host matching no payload recompile instead of
being refused.  Everything deployment-relevant (which targets, how compiled,
are the bytes intact) is readable from the manifest line without unpickling
anything — that is what ``repro.cli inspect``/``verify`` and the
:class:`~repro.api.ModelRepository` operate on.

Version-1 files (single payload, no ``targets`` list, no checksums) are
still read by :func:`load_module`/:func:`load_member`; writing always
produces version 2.

Fingerprinting
--------------

An artifact records the fingerprint of everything its contents depend on:
the artifact format version, the target CPU description, the compile
configuration, and (when the :class:`~repro.api.Optimizer` saves it) the
structure of the source graph and a digest of the bound parameters.  Loading
with a different expected fingerprint raises :class:`StaleArtifactError`
instead of silently serving schedules tuned for another target or
configuration — the caller recompiles and overwrites.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import threading
from pathlib import Path
from typing import Mapping, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph.graph import Graph
    from ..hardware.cpu import CPUSpec
    from .module import CompiledModule

__all__ = [
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "ArtifactError",
    "StaleArtifactError",
    "bundle_fingerprint",
    "compilation_fingerprint",
    "graph_fingerprint",
    "params_fingerprint",
    "manifest_targets",
    "read_manifest",
    "save_bundle",
    "save_module",
    "load_member",
    "load_module",
    "load_source",
    "verify_artifact",
    "PIN_INFIX",
    "pin_file_path",
    "write_pin_file",
    "remove_pin_file",
    "pid_alive",
    "pin_file_owners",
    "live_pin_owners",
    "sweep_stale_pin_files",
]

#: Version of the artifact container written by this code; bumped when the
#: layout or the meaning of the stored payload changes.
ARTIFACT_VERSION = 2

#: Container versions this code can still read.
SUPPORTED_VERSIONS = (1, 2)

_MAGIC = b"NEOCPU-ARTIFACT\n"


class ArtifactError(RuntimeError):
    """A compiled-module artifact cannot be loaded."""


class StaleArtifactError(ArtifactError):
    """An artifact exists but was compiled under a different fingerprint.

    Serving it would silently apply schedules tuned for another target,
    configuration, model or parameter set; the caller should recompile.
    """


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
def _stable(value):
    """Reduce ``value`` to a deterministic JSON-encodable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_stable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # fingerprint=False field metadata opts a field out (e.g.
        # CompileConfig.verify_ir): flags that cannot change the compiled
        # result must not invalidate every cached artifact when toggled.
        return {
            field.name: _stable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
            and field.metadata.get("fingerprint", True)
        }
    # Layout, DType, Node, ... — anything with a meaningful repr/str.
    return f"{type(value).__name__}:{value}"


def _digest(payload) -> str:
    encoded = json.dumps(_stable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def compilation_fingerprint(cpu: "CPUSpec", config) -> str:
    """Fingerprint of the (target, configuration) pair an artifact serves."""
    return _digest(
        {
            "artifact_version": ARTIFACT_VERSION,
            "cpu": cpu,
            "config": config,
        }
    )


def graph_fingerprint(graph: "Graph") -> str:
    """Structural fingerprint of a model graph (pre-compilation).

    Covers node kinds, operator names, attributes, connectivity and tensor
    specs — two structurally identical builds of the same model fingerprint
    identically; any edit to the model changes it.  Bound constant values are
    deliberately excluded (parameters are fingerprinted separately so that
    spec-only graphs and value-bound graphs of the same architecture share a
    structure hash).

    The symbolic-batch marker is part of the spec string (a ``BatchDim``
    renders as a plain int everywhere else): a batch-polymorphic build and a
    ``polymorphic_batch=False`` build of the same model serve different
    request shapes, so they must never share an artifact-cache entry — and a
    pre-convention artifact (no marker anywhere) fingerprints differently
    from today's build of the same model, forcing a recompile instead of
    silently serving with frozen batch semantics.
    """
    nodes = []
    for node in graph.topological_order():
        attrs = {k: v for k, v in node.attrs.items()}
        spec = node.spec
        nodes.append(
            {
                "kind": node.kind,
                "op": node.op,
                "name": node.name,
                "inputs": [producer.name for producer in node.inputs],
                "attrs": attrs,
                "spec": None if spec is None else str(spec.layout)
                + str(spec.logical_shape) + spec.dtype.name
                + ("~N" if spec.batch_polymorphic else ""),
            }
        )
    return _digest({"name": graph.name, "nodes": nodes})


def params_fingerprint(params: Optional[Mapping[str, np.ndarray]]) -> str:
    """Digest of explicitly-bound parameter values (empty mapping included)."""
    if not params:
        return "none"
    return _digest({name: np.asarray(value) for name, value in params.items()})


def bundle_fingerprint(member_fingerprints: "list[str] | tuple[str, ...]") -> str:
    """Fingerprint of a whole multi-target bundle.

    Order-insensitive over the member fingerprints: a bundle built for
    ``[skylake, arm]`` and one built for ``[arm, skylake]`` from the same
    inputs are the same deployment unit.
    """
    return _digest({"bundle": sorted(member_fingerprints)})


# --------------------------------------------------------------------------- #
# save / load
# --------------------------------------------------------------------------- #
def _module_payload_bytes(module: "CompiledModule") -> bytes:
    payload = {
        "graph": module.graph,
        "cpu": module.cpu,
        "config": module.config,
        "schedules": module.schedules,
        "search_method": module.search_method,
        "pass_report": module.pass_report,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def save_bundle(
    members: "list[tuple[CompiledModule, str]]",
    path: "str | Path",
    source: Optional[dict] = None,
) -> Path:
    """Write a (possibly multi-target) version-2 artifact.

    Args:
        members: ``(module, fingerprint)`` pairs, one per compiled target.
            All modules must come from the same model; target names must be
            unique within the bundle.
        path: destination file.
        source: optional recompilation payload, a dict with keys ``graph``
            (the *uncompiled* model graph), ``params`` (bound parameter
            values or ``None``) and ``config`` (the compile configuration).
            A bundle carrying it can be transparently recompiled for a host
            none of the payloads fit; without it such a host is refused.
    """
    from ..hardware.presets import cpu_summary, host_fingerprint
    from .. import __version__

    if not members:
        raise ValueError("a bundle needs at least one compiled member")
    model_names = {module.graph.name for module, _ in members}
    if len(model_names) > 1:
        raise ValueError(
            f"bundle members disagree on the model: {sorted(model_names)}"
        )
    target_names = [module.cpu.name for module, _ in members]
    if len(set(target_names)) != len(target_names):
        raise ValueError(f"duplicate targets in bundle: {target_names}")

    payload_blobs = [_module_payload_bytes(module) for module, _ in members]
    targets = [
        {
            "target": module.cpu.name,
            "host_fingerprint": host_fingerprint(module.cpu),
            "cpu": cpu_summary(module.cpu),
            "fingerprint": fingerprint,
            "search_method": module.search_method,
            "num_schedules": len(module.schedules),
            "payload_bytes": len(blob),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
        }
        for (module, fingerprint), blob in zip(members, payload_blobs)
    ]
    source_blob = b""
    if source is not None:
        source_blob = pickle.dumps(source, protocol=pickle.HIGHEST_PROTOCOL)
    manifest = {
        "artifact_version": ARTIFACT_VERSION,
        "repro_version": __version__,
        "model": members[0][0].graph.name,
        "targets": targets,
        "fingerprint": (
            members[0][1] if len(members) == 1
            else bundle_fingerprint([fp for _, fp in members])
        ),
        "source_bytes": len(source_blob),
        "source_sha256": hashlib.sha256(source_blob).hexdigest() if source_blob else None,
    }
    if len(members) == 1:
        # Single-target convenience fields, same shape v1 manifests had, so
        # manifest-only consumers need no version dispatch for the common case.
        manifest.update(
            target=targets[0]["target"],
            search_method=targets[0]["search_method"],
            num_schedules=targets[0]["num_schedules"],
        )

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(json.dumps(manifest, sort_keys=True).encode("utf-8"))
    buffer.write(b"\n")
    for blob in payload_blobs:
        buffer.write(blob)
    buffer.write(source_blob)
    # Write-then-rename so a killed process (or a concurrent session sharing
    # the cache dir) never leaves a truncated artifact under the final name —
    # and so the repository GC never sees a half-written manifest.  The temp
    # name includes the thread id: concurrent saves from one process must
    # not tear each other's temp file.
    temp = path.with_name(
        path.name + f".tmp-{os.getpid()}-{threading.get_ident()}"
    )
    temp.write_bytes(buffer.getvalue())
    os.replace(temp, path)
    return path


def save_module(
    module: "CompiledModule",
    path: "str | Path",
    fingerprint: Optional[str] = None,
) -> Path:
    """Serialize one module (graph, schedules, params, config) to ``path``.

    Single-target convenience over :func:`save_bundle`.

    Args:
        module: the compiled module to persist.
        path: destination file.
        fingerprint: compilation fingerprint to record; defaults to the
            (target, config) fingerprint.  The :class:`~repro.api.Optimizer`
            passes its richer fingerprint that also covers the source graph
            and parameters.
    """
    if fingerprint is None:
        fingerprint = compilation_fingerprint(module.cpu, module.config)
    return save_bundle([(module, fingerprint)], path)


def read_manifest(path: "str | Path") -> dict:
    """Read just the JSON manifest of an artifact (no unpickling).

    Raises:
        ArtifactError: when the file is not a NeoCPU artifact or was written
            by an artifact format version this code cannot read.
    """
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ArtifactError(f"{path} is not a NeoCPU compiled-module artifact")
        try:
            manifest = json.loads(handle.readline().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ArtifactError(f"{path} has a corrupt artifact manifest") from error
    if not isinstance(manifest, dict):
        raise ArtifactError(f"{path} has a corrupt artifact manifest")
    version = manifest.get("artifact_version")
    if version not in SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"{path} uses artifact format version {version}, but this code "
            f"reads versions {SUPPORTED_VERSIONS}; recompile to regenerate it"
        )
    return manifest


def manifest_targets(manifest: dict) -> "list[dict]":
    """The per-target entries of a manifest, normalized across versions.

    Version-2 manifests carry the list directly.  For a version-1 manifest a
    single entry is synthesized with ``payload_bytes``/``payload_sha256``/
    ``cpu``/``host_fingerprint`` set to ``None`` (v1 recorded none of them).
    """
    if manifest.get("artifact_version") == 1:
        return [
            {
                "target": manifest.get("target"),
                "host_fingerprint": None,
                "cpu": None,
                "fingerprint": manifest.get("fingerprint"),
                "search_method": manifest.get("search_method"),
                "num_schedules": manifest.get("num_schedules"),
                "payload_bytes": None,
                "payload_sha256": None,
            }
        ]
    targets = manifest.get("targets")
    if not isinstance(targets, list) or not targets:
        raise ArtifactError("artifact manifest has no targets list")
    return targets


def _read_payload(path: Path, manifest: dict, index: int) -> bytes:
    """Raw pickle bytes of the ``index``-th target payload (length+sha checked)."""
    targets = manifest_targets(manifest)
    with path.open("rb") as handle:
        handle.read(len(_MAGIC))
        handle.readline()  # manifest line
        if manifest.get("artifact_version") == 1:
            return handle.read()  # v1: one unframed payload to EOF
        offset = sum(int(entry["payload_bytes"]) for entry in targets[:index])
        handle.seek(offset, io.SEEK_CUR)
        entry = targets[index]
        expected_bytes = int(entry["payload_bytes"])
        blob = handle.read(expected_bytes)
    if len(blob) != expected_bytes:
        raise ArtifactError(
            f"{path}: payload for target {entry['target']!r} is truncated "
            f"({len(blob)} of {expected_bytes} bytes)"
        )
    recorded_sha = entry.get("payload_sha256")
    if recorded_sha and hashlib.sha256(blob).hexdigest() != recorded_sha:
        raise ArtifactError(
            f"{path}: payload for target {entry['target']!r} fails its "
            f"checksum; the artifact is corrupt"
        )
    return blob


def _module_from_payload(payload: dict, fingerprint: str) -> "CompiledModule":
    from .module import CompiledModule

    return CompiledModule(
        graph=payload["graph"],
        cpu=payload["cpu"],
        config=payload["config"],
        schedules=payload["schedules"],
        search_method=payload["search_method"],
        pass_report=payload["pass_report"],
        fingerprint=fingerprint,
    )


def load_member(
    path: "str | Path",
    target: Optional[str] = None,
    expected_fingerprint: Optional[str] = None,
) -> "CompiledModule":
    """Load one target's compiled module from a (possibly multi-target) artifact.

    Args:
        path: artifact file (version 1 or 2).
        target: target name of the member to load.  ``None`` requires the
            artifact to have exactly one member (the single-target case).
        expected_fingerprint: when given, the member's recorded fingerprint
            must match exactly.

    Raises:
        ArtifactError: for non-artifact files, unknown targets, truncated or
            checksum-failing payloads.
        StaleArtifactError: when ``expected_fingerprint`` does not match the
            recorded one — the member was compiled for a different target,
            configuration, model or parameter set.
    """
    path = Path(path)
    manifest = read_manifest(path)
    targets = manifest_targets(manifest)
    if target is None:
        if len(targets) != 1:
            raise ArtifactError(
                f"{path} is a multi-target bundle "
                f"({[entry['target'] for entry in targets]}); name the target "
                f"to load, or use repro.api.load_engine for host matching"
            )
        index = 0
    else:
        by_name = {entry["target"]: i for i, entry in enumerate(targets)}
        if target not in by_name:
            raise ArtifactError(
                f"{path} has no payload for target {target!r}; "
                f"available: {sorted(by_name)}"
            )
        index = by_name[target]
    entry = targets[index]
    recorded = entry.get("fingerprint")
    # Single-member artifacts also record a manifest-level fingerprint (the
    # legacy field every pre-bundle consumer checks); both copies must agree
    # with the expectation, so tampering with either is caught.
    manifest_level = manifest.get("fingerprint") if len(targets) == 1 else None
    if expected_fingerprint is not None:
        for candidate in (recorded, manifest_level):
            if candidate is not None and candidate != expected_fingerprint:
                raise StaleArtifactError(
                    f"{path} was compiled under fingerprint "
                    f"{str(candidate)[:16]}..., expected "
                    f"{expected_fingerprint[:16]}...; recompile to refresh it"
                )
    try:
        blob = _read_payload(path, manifest, index)
        payload = pickle.loads(blob)
        return _module_from_payload(payload, recorded or "")
    except ArtifactError:
        raise
    except Exception as error:
        # Truncated pickle (EOFError), a class that moved between versions
        # (AttributeError), a missing payload key, ... — all mean the same
        # thing to the caller: this artifact cannot be served and should be
        # recompiled, so surface them uniformly as ArtifactError.
        raise ArtifactError(f"{path} has a corrupt artifact payload: {error}") from error


def load_module(
    path: "str | Path",
    expected_fingerprint: Optional[str] = None,
) -> "CompiledModule":
    """Load the module of a single-target artifact (see :func:`load_member`)."""
    return load_member(path, target=None, expected_fingerprint=expected_fingerprint)


def load_source(path: "str | Path") -> Optional[dict]:
    """The recompilation payload of a bundle, or ``None`` when absent.

    Returns the dict passed to :func:`save_bundle` as ``source`` — keys
    ``graph`` (uncompiled model graph), ``params`` and ``config``.

    Raises:
        ArtifactError: when the recorded source payload is truncated,
            checksum-failing or unpicklable.
    """
    path = Path(path)
    manifest = read_manifest(path)
    source_bytes = int(manifest.get("source_bytes") or 0)
    if manifest.get("artifact_version") == 1 or source_bytes == 0:
        return None
    targets = manifest_targets(manifest)
    offset = sum(int(entry["payload_bytes"]) for entry in targets)
    with path.open("rb") as handle:
        handle.read(len(_MAGIC))
        handle.readline()
        handle.seek(offset, io.SEEK_CUR)
        blob = handle.read(source_bytes)
    if len(blob) != source_bytes:
        raise ArtifactError(
            f"{path}: source payload is truncated "
            f"({len(blob)} of {source_bytes} bytes)"
        )
    recorded_sha = manifest.get("source_sha256")
    if recorded_sha and hashlib.sha256(blob).hexdigest() != recorded_sha:
        raise ArtifactError(f"{path}: source payload fails its checksum")
    try:
        return pickle.loads(blob)
    except Exception as error:
        raise ArtifactError(f"{path} has a corrupt source payload: {error}") from error


def _verify_source_graph(path: Path, source: dict) -> "list[str]":
    """Semantically verify a bundle's embedded source graph.

    A checksum proves the bytes survived; it says nothing about whether the
    graph they encode is recompilable.  Run shape inference and the graph
    verifier (:func:`repro.analysis.verify_graph`) over the unpickled source
    graph so ``verify --deep`` catches a bundle whose source would fail to
    recompile on the next cache miss.
    """
    # Imported here: analysis depends on the graph IR, not vice versa, and
    # most artifact operations never need it.
    from ..analysis.verifier import verify_graph
    from ..graph.shape_infer import InferenceError, infer_shapes

    if "graph" not in source:
        return [f"{path}: source payload lacks a graph"]
    graph = source["graph"]
    # Structure first: inference (and Graph traversal generally) assumes a
    # well-formed DAG — it would crash on a dangling reference and loop
    # forever on a cycle, both of which the verifier detects safely.
    structural = verify_graph(graph, check_shapes=False)
    if structural:
        return [
            f"{path}: source graph invalid — {problem.render()}"
            for problem in structural
        ]
    try:
        infer_shapes(graph)
    except InferenceError as error:
        return [f"{path}: source graph fails shape inference: {error}"]
    return [
        f"{path}: source graph invalid — {problem.render()}"
        for problem in verify_graph(graph)
    ]


def verify_artifact(path: "str | Path", deep: bool = False) -> "list[str]":
    """Integrity-check one artifact; returns a list of problems (empty = ok).

    The shallow check reads the manifest and re-hashes every payload against
    its recorded length and SHA-256 — no unpickling, so it is safe on
    artifacts from untrusted sources.  ``deep=True`` additionally unpickles
    every member (and the source payload), runs shape inference over the
    embedded source graph and semantically verifies it with
    :func:`repro.analysis.verify_graph` — catching pickle-level rot *and*
    graphs that would not recompile — but must only be used on trusted
    files.
    """
    path = Path(path)
    problems: "list[str]" = []
    try:
        manifest = read_manifest(path)
    except (ArtifactError, OSError) as error:
        return [str(error)]
    try:
        targets = manifest_targets(manifest)
    except ArtifactError as error:
        return [str(error)]
    for index, entry in enumerate(targets):
        try:
            blob = _read_payload(path, manifest, index)
            if deep:
                _module_from_payload(pickle.loads(blob), entry.get("fingerprint") or "")
        except (ArtifactError, OSError) as error:
            problems.append(str(error))
        except Exception as error:
            problems.append(
                f"{path}: payload for target {entry.get('target')!r} does not "
                f"unpickle: {error}"
            )
    if manifest.get("artifact_version") != 1:
        try:
            source = load_source(path)
            if deep and source is not None:
                problems.extend(_verify_source_graph(path, source))
        except ArtifactError as error:
            problems.append(str(error))
    # (v1 payloads record no length/checksum, so for them the shallow check
    # only proves the manifest parses; the deep unpickle above is the only
    # real integrity evidence.)
    return problems


# --------------------------------------------------------------------------- #
# cross-process pin files
# --------------------------------------------------------------------------- #
#: Separator between an artifact's filename and the owning pid in a pin file:
#: ``model.neocpu`` pinned by pid 4242 is shadowed by ``model.neocpu.pin.4242``.
PIN_INFIX = ".pin."


def pin_file_path(artifact: "str | Path", pid: Optional[int] = None) -> Path:
    """The pin file that marks ``artifact`` as in use by process ``pid``.

    Pin files are siblings of the artifact (same directory), so a repository
    sweep sees artifact and pins in one ``iterdir`` pass, and deleting the
    repository deletes its pins with it.  ``pid`` defaults to the calling
    process.
    """
    artifact = Path(artifact)
    if pid is None:
        pid = os.getpid()
    return artifact.with_name(f"{artifact.name}{PIN_INFIX}{int(pid)}")


def write_pin_file(artifact: "str | Path", pid: Optional[int] = None) -> Path:
    """Pin ``artifact`` for ``pid`` (default: this process); returns the pin.

    The pin is written write-then-rename so a concurrent sweep never observes
    a half-written pin: it either sees no pin (artifact evictable) or a
    complete one.  Re-pinning by the same pid is idempotent — the rename
    simply replaces the previous pin.
    """
    artifact = Path(artifact)
    pin = pin_file_path(artifact, pid)
    # One writer per (artifact, pid) by construction, so a pid-suffixed tmp
    # name cannot collide with another writer's.
    tmp = pin.with_name(f"{pin.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{int(pid if pid is not None else os.getpid())}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, pin)
    except BaseException:
        # A failed write/fsync/rename must not orphan the temp pin: it would
        # sit beside the artifact forever (sweeps only reclaim it once this
        # process dies).
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return pin


def remove_pin_file(artifact: "str | Path", pid: Optional[int] = None) -> bool:
    """Release ``pid``'s pin on ``artifact``; True if a pin was removed."""
    pin = pin_file_path(artifact, pid)
    try:
        pin.unlink()
    except FileNotFoundError:
        return False
    return True


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pin's owning process.

    ``kill(pid, 0)`` delivers no signal, it only checks deliverability:
    ``ProcessLookupError`` means the process is gone (its pins are stale),
    ``PermissionError`` means it exists but belongs to another user (alive).
    Non-positive pids are never probed — ``kill(0, ...)``/``kill(-n, ...)``
    address process *groups*, not processes — and count as dead.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def pin_file_owners(artifact: "str | Path") -> "list[tuple[int, Path]]":
    """Every pin file shadowing ``artifact``: ``(owning pid, pin path)`` pairs.

    A pin file whose pid segment does not parse was not written by this
    protocol; it is reported as pid ``-1`` (which :func:`pid_alive` treats as
    dead, so sweeps reclaim it).
    """
    artifact = Path(artifact)
    owners = []
    prefix = artifact.name + PIN_INFIX
    try:
        siblings = list(artifact.parent.iterdir())
    except OSError:
        return []
    for path in siblings:
        name = path.name
        if not name.startswith(prefix) or ".tmp-" in name:
            continue
        try:
            pid = int(name[len(prefix):])
        except ValueError:
            pid = -1
        owners.append((pid, path))
    owners.sort()
    return owners


def live_pin_owners(artifact: "str | Path") -> "list[int]":
    """Pids of live processes currently cross-process-pinning ``artifact``."""
    return [pid for pid, _ in pin_file_owners(artifact) if pid_alive(pid)]


def sweep_stale_pin_files(directory: "str | Path") -> "list[Path]":
    """Remove pin files whose owning process is gone; returns what was removed.

    Only dead-owner (and unparseable) pins are touched — a live process's pin
    is never removed by anyone but that process.  Safe to run concurrently
    with pinning: :func:`write_pin_file` renames complete pins into place, so
    the sweep never sees a partial pin, and a pin appearing after the
    ``iterdir`` snapshot is simply not considered this sweep.
    """
    directory = Path(directory)
    removed = []
    try:
        snapshot = list(directory.iterdir())
    except OSError:
        return removed
    for path in snapshot:
        name = path.name
        if PIN_INFIX not in name:
            continue
        if ".tmp-" in name:
            # A temp pin is owned by its *writer*: live writer means a rename
            # is imminent (leave it alone); dead writer means the crash
            # orphaned it and nobody else will ever reclaim it.
            try:
                pid = int(name.rsplit(".tmp-", 1)[1])
            except ValueError:
                pid = -1
        else:
            try:
                pid = int(name.rsplit(PIN_INFIX, 1)[1])
            except ValueError:
                pid = -1
        if pid_alive(pid):
            continue
        try:
            path.unlink()
        except FileNotFoundError:
            continue  # raced with a concurrent sweep
        removed.append(path)
    return removed

"""Durable compiled-module artifacts.

The paper's value proposition is compile-once/serve-forever: the expensive
joint schedule search happens at compilation time, and the result is a
standalone module that can be deployed.  This module gives that workflow a
durable on-disk form: :func:`save_module` / :func:`load_module` round-trip a
:class:`~repro.runtime.module.CompiledModule` — optimized graph, chosen
per-convolution schedules, pre-transformed parameter values, search method,
target description and compile configuration — through a single artifact
file.

Artifact file format (version 1)
--------------------------------

``NEOCPU-ARTIFACT\\n`` magic, one line of JSON manifest (human-readable
metadata plus the compilation fingerprint), then a pickle of the module
payload.  The manifest can be read without unpickling anything, which is how
the :class:`~repro.api.Optimizer` cache decides cheaply whether an artifact
is fresh.

Fingerprinting
--------------

An artifact records the fingerprint of everything its contents depend on:
the artifact format version, the target CPU description, the compile
configuration, and (when the :class:`~repro.api.Optimizer` saves it) the
structure of the source graph and a digest of the bound parameters.  Loading
with a different expected fingerprint raises :class:`StaleArtifactError`
instead of silently serving schedules tuned for another target or
configuration — the caller recompiles and overwrites.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
from pathlib import Path
from typing import Mapping, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph.graph import Graph
    from ..hardware.cpu import CPUSpec
    from .module import CompiledModule

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "StaleArtifactError",
    "compilation_fingerprint",
    "graph_fingerprint",
    "params_fingerprint",
    "read_manifest",
    "save_module",
    "load_module",
]

#: Version of the artifact container; bumped when the layout or the meaning
#: of the stored payload changes.
ARTIFACT_VERSION = 1

_MAGIC = b"NEOCPU-ARTIFACT\n"


class ArtifactError(RuntimeError):
    """A compiled-module artifact cannot be loaded."""


class StaleArtifactError(ArtifactError):
    """An artifact exists but was compiled under a different fingerprint.

    Serving it would silently apply schedules tuned for another target,
    configuration, model or parameter set; the caller should recompile.
    """


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
def _stable(value):
    """Reduce ``value`` to a deterministic JSON-encodable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_stable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _stable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
        }
    # Layout, DType, Node, ... — anything with a meaningful repr/str.
    return f"{type(value).__name__}:{value}"


def _digest(payload) -> str:
    encoded = json.dumps(_stable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def compilation_fingerprint(cpu: "CPUSpec", config) -> str:
    """Fingerprint of the (target, configuration) pair an artifact serves."""
    return _digest(
        {
            "artifact_version": ARTIFACT_VERSION,
            "cpu": cpu,
            "config": config,
        }
    )


def graph_fingerprint(graph: "Graph") -> str:
    """Structural fingerprint of a model graph (pre-compilation).

    Covers node kinds, operator names, attributes, connectivity and tensor
    specs — two structurally identical builds of the same model fingerprint
    identically; any edit to the model changes it.  Bound constant values are
    deliberately excluded (parameters are fingerprinted separately so that
    spec-only graphs and value-bound graphs of the same architecture share a
    structure hash).

    The symbolic-batch marker is part of the spec string (a ``BatchDim``
    renders as a plain int everywhere else): a batch-polymorphic build and a
    ``polymorphic_batch=False`` build of the same model serve different
    request shapes, so they must never share an artifact-cache entry — and a
    pre-convention artifact (no marker anywhere) fingerprints differently
    from today's build of the same model, forcing a recompile instead of
    silently serving with frozen batch semantics.
    """
    nodes = []
    for node in graph.topological_order():
        attrs = {k: v for k, v in node.attrs.items()}
        spec = node.spec
        nodes.append(
            {
                "kind": node.kind,
                "op": node.op,
                "name": node.name,
                "inputs": [producer.name for producer in node.inputs],
                "attrs": attrs,
                "spec": None if spec is None else str(spec.layout)
                + str(spec.logical_shape) + spec.dtype.name
                + ("~N" if spec.batch_polymorphic else ""),
            }
        )
    return _digest({"name": graph.name, "nodes": nodes})


def params_fingerprint(params: Optional[Mapping[str, np.ndarray]]) -> str:
    """Digest of explicitly-bound parameter values (empty mapping included)."""
    if not params:
        return "none"
    return _digest({name: np.asarray(value) for name, value in params.items()})


# --------------------------------------------------------------------------- #
# save / load
# --------------------------------------------------------------------------- #
def save_module(
    module: "CompiledModule",
    path: "str | Path",
    fingerprint: Optional[str] = None,
) -> Path:
    """Serialize ``module`` (graph, schedules, params, config) to ``path``.

    Args:
        module: the compiled module to persist.
        path: destination file.
        fingerprint: compilation fingerprint to record; defaults to the
            (target, config) fingerprint.  The :class:`~repro.api.Optimizer`
            passes its richer fingerprint that also covers the source graph
            and parameters.
    """
    from .. import __version__

    if fingerprint is None:
        fingerprint = compilation_fingerprint(module.cpu, module.config)
    manifest = {
        "artifact_version": ARTIFACT_VERSION,
        "repro_version": __version__,
        "model": module.graph.name,
        "target": module.cpu.name,
        "search_method": module.search_method,
        "num_schedules": len(module.schedules),
        "fingerprint": fingerprint,
    }
    payload = {
        "graph": module.graph,
        "cpu": module.cpu,
        "config": module.config,
        "schedules": module.schedules,
        "search_method": module.search_method,
        "pass_report": module.pass_report,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(json.dumps(manifest, sort_keys=True).encode("utf-8"))
    buffer.write(b"\n")
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    # Write-then-rename so a killed process (or a concurrent session sharing
    # the cache dir) never leaves a truncated artifact under the final name.
    temp = path.with_name(path.name + f".tmp-{os.getpid()}")
    temp.write_bytes(buffer.getvalue())
    os.replace(temp, path)
    return path


def read_manifest(path: "str | Path") -> dict:
    """Read just the JSON manifest of an artifact (no unpickling).

    Raises:
        ArtifactError: when the file is not a NeoCPU artifact or was written
            by a different artifact format version.
    """
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ArtifactError(f"{path} is not a NeoCPU compiled-module artifact")
        try:
            manifest = json.loads(handle.readline().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ArtifactError(f"{path} has a corrupt artifact manifest") from error
    version = manifest.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path} uses artifact format version {version}, but this code "
            f"reads version {ARTIFACT_VERSION}; recompile to regenerate it"
        )
    return manifest


def load_module(
    path: "str | Path",
    expected_fingerprint: Optional[str] = None,
) -> "CompiledModule":
    """Load a module previously written by :func:`save_module`.

    Args:
        path: artifact file.
        expected_fingerprint: when given, the artifact's recorded fingerprint
            must match exactly.

    Raises:
        ArtifactError: for non-artifact or version-mismatched files.
        StaleArtifactError: when ``expected_fingerprint`` does not match the
            recorded one — the artifact was compiled for a different target,
            configuration, model or parameter set.
    """
    from .module import CompiledModule

    path = Path(path)
    manifest = read_manifest(path)
    recorded = manifest.get("fingerprint")
    if expected_fingerprint is not None and recorded != expected_fingerprint:
        raise StaleArtifactError(
            f"{path} was compiled under fingerprint "
            f"{str(recorded)[:16]}..., expected "
            f"{expected_fingerprint[:16]}...; recompile to refresh it"
        )
    try:
        with path.open("rb") as handle:
            handle.read(len(_MAGIC))
            handle.readline()  # manifest
            payload = pickle.load(handle)
        return CompiledModule(
            graph=payload["graph"],
            cpu=payload["cpu"],
            config=payload["config"],
            schedules=payload["schedules"],
            search_method=payload["search_method"],
            pass_report=payload["pass_report"],
            fingerprint=recorded or "",
        )
    except ArtifactError:
        raise
    except Exception as error:
        # Truncated pickle (EOFError), a class that moved between versions
        # (AttributeError), a missing payload key, ... — all mean the same
        # thing to the caller: this artifact cannot be served and should be
        # recompiled, so surface them uniformly as ArtifactError.
        raise ArtifactError(f"{path} has a corrupt artifact payload: {error}") from error

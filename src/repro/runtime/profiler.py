"""Profiling helpers: per-operator latency breakdown and timing utilities.

Two kinds of profiling coexist in this reproduction:

* **analytical profiling** — formatting the :class:`LatencyReport` produced by
  the cost model into the per-operator tables that guide optimization work
  (which convolutions dominate, how much time goes into layout transforms);
* **wall-clock timing** — a small repeat/average timer matching the paper's
  measurement protocol ("averaging the execution times of 1000 samples"),
  used by tests and examples that time the functional executor on small
  models, and by the pytest benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..costmodel.graph_cost import LatencyReport

__all__ = ["format_report", "top_costs", "Timer", "time_callable"]


def top_costs(report: LatencyReport, k: int = 10) -> List[Tuple[str, float]]:
    """The ``k`` most expensive nodes of a latency report (name, milliseconds)."""
    ordered = sorted(report.node_costs, key=lambda cost: cost.time_s, reverse=True)
    return [(cost.name, cost.time_s * 1e3) for cost in ordered[:k]]


def format_report(report: LatencyReport, k: int = 15) -> str:
    """Human-readable per-operator profile table."""
    lines = [
        f"Profile of {report.graph_name} on {report.cpu_name} "
        f"({report.num_threads} threads) — total {report.total_ms:.3f} ms",
        f"{'node':<40s}{'op':<20s}{'ms':>10s}  {'category':<10s}",
    ]
    ordered = sorted(report.node_costs, key=lambda cost: cost.time_s, reverse=True)
    for cost in ordered[:k]:
        lines.append(
            f"{cost.name:<40s}{cost.op:<20s}{cost.time_s * 1e3:>10.4f}  {cost.category:<10s}"
        )
    by_category = report.by_category()
    lines.append("-" * 82)
    for category in sorted(by_category):
        lines.append(f"{'':<40s}{category:<20s}{by_category[category] * 1e3:>10.4f}")
    return "\n".join(lines)


@dataclass
class Timer:
    """Repeat-and-average wall-clock timer.

    Attributes:
        repeats: number of timed runs.
        warmup: untimed warm-up runs executed first.
    """

    repeats: int = 10
    warmup: int = 1

    def time(self, func: Callable[[], object]) -> Tuple[float, float]:
        """Return (mean seconds, standard error) over the timed runs."""
        for _ in range(self.warmup):
            func()
        samples: List[float] = []
        for _ in range(self.repeats):
            start = time.perf_counter()
            func()
            samples.append(time.perf_counter() - start)
        mean = sum(samples) / len(samples)
        if len(samples) > 1:
            variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
            stderr = (variance / len(samples)) ** 0.5
        else:
            stderr = 0.0
        return mean, stderr


def time_callable(
    func: Callable[[], object],
    repeats: int = 10,
    warmup: int = 1,
) -> float:
    """Mean wall-clock seconds of ``func`` over ``repeats`` runs."""
    mean, _ = Timer(repeats=repeats, warmup=warmup).time(func)
    return mean

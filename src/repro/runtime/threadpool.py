"""Custom thread pool with single-producer single-consumer task queues.

Section 3.1.2 of the paper replaces OpenMP with a hand-rolled thread pool:
one worker per physical core, tasks distributed through per-worker
single-producer/single-consumer lock-free queues, fork/join coordinated with
atomics, threads pinned to disjoint cores, cache-line padding to avoid false
sharing.

This module reproduces that *structure* faithfully in Python: per-worker SPSC
queues (a deque written only by the scheduler and read only by its worker),
an atomic-style completion counter for the join, static partitioning of the
outermost loop into one contiguous chunk per worker, and no use of
hyper-threads.  What it cannot reproduce is the *performance* (the GIL
serializes numpy-free Python code), which is why the scalability figures come
from the analytical model in :mod:`repro.costmodel.parallel`; the thread pool
here is exercised functionally by the executor's parallel convolution path
and by the test suite.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BoundedQueue",
    "BufferPool",
    "SPSCQueue",
    "ThreadPool",
    "WeightedFairQueue",
    "parallel_for",
    "static_partition",
]


class SPSCQueue:
    """A single-producer single-consumer queue.

    The scheduler side pushes and only the owning worker pops, so a
    ``collections.deque`` (append/popleft are atomic under the GIL) gives the
    same progress guarantees the paper's lock-free queue provides, without a
    lock in the fast path.  A condition variable is used purely to let the
    worker sleep when idle.  (Concurrent parallel regions mean several
    scheduler threads may push; ``deque.append`` stays atomic under the GIL,
    so the lock-free fast path survives the plural producers.)
    """

    def __init__(self) -> None:
        self._items: deque = deque()
        self._not_empty = threading.Condition(threading.Lock())

    def push(self, item) -> None:
        """Producer side: enqueue a task."""
        self._items.append(item)
        with self._not_empty:
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None):
        """Consumer side: dequeue a task, blocking while empty.

        The wait is deadline-based against ``time.monotonic()``: a spurious
        wakeup, or a ``notify`` consumed by an earlier pop, re-enters the
        wait with only the *remaining* budget, so ``pop(timeout=t)`` raises
        :class:`TimeoutError` no earlier and not appreciably later than
        ``t`` seconds after the call (it used to restart the full wait on
        every loop iteration, and to raise early when a wakeup raced an
        empty queue).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return self._items.popleft()
            except IndexError:
                with self._not_empty:
                    if self._items:
                        continue
                    if deadline is None:
                        self._not_empty.wait(None)  # repro: noqa[REP011] -- timeout=None is pop()'s documented block-forever contract; shutdown push notifies this condition
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("SPSC queue pop timed out") from None
                    self._not_empty.wait(remaining)

    def __len__(self) -> int:
        return len(self._items)


class BoundedQueue:
    """A bounded multi-producer single-consumer FIFO.

    This is the request queue of the serving scheduler
    (:class:`repro.api.scheduler.RequestScheduler`): many submitter threads
    :meth:`put` concurrently, one collector thread consumes.  ``put`` blocks
    while the queue is at capacity — that is the backpressure that keeps a
    traffic burst from growing the queue (and the tail latency) without bound
    — and both sides honor timeouts so a caller with a deadline is never
    parked forever.

    Unlike :class:`SPSCQueue`, every operation takes the lock: with multiple
    producers the lock-free deque trick no longer applies, and the consumer
    needs an atomic look-at-head-then-pop (:meth:`pop_matching`) to gather
    shape-compatible requests without reordering the stream.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def put(self, item, timeout: Optional[float] = None) -> bool:
        """Enqueue ``item``, blocking while the queue is full.

        Returns True on success, False when the queue stayed full past
        ``timeout`` or was closed while waiting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while len(self._items) >= self.capacity:
                if self._closed:
                    return False
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._not_full.wait(remaining)
            if self._closed:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None):
        """Dequeue the head item, or return None on timeout / closed-and-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while not self._items:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def pop_matching(
        self, predicate: Callable[[object], bool], timeout: Optional[float] = None
    ) -> Tuple[Optional[object], str]:
        """Pop the head item only if ``predicate(head)`` holds.

        Waits up to ``timeout`` for an item to arrive when empty.  Returns
        ``(item, "ok")`` on a match, ``(None, "mismatch")`` when the head
        exists but does not match (it stays queued, FIFO order preserved), and
        ``(None, "empty")`` on timeout or close.  This is the batching
        collector's gather step: coalesce *consecutive* compatible requests,
        stop at the first incompatible one.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while not self._items:
                if self._closed:
                    return None, "empty"
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None, "empty"
                self._not_empty.wait(remaining)
            if not predicate(self._items[0]):
                return None, "mismatch"
            item = self._items.popleft()
            self._not_full.notify()
            return item, "ok"

    def close(self) -> None:
        """Refuse further puts and wake every waiter; queued items stay readable."""
        with self._mutex:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._items)


class WeightedFairQueue:
    """A bounded MPSC queue with weighted-fair dequeue across request classes.

    The serving scheduler's request queue, generalized from strict FIFO to
    *per-class* FIFO: every request belongs to one of a fixed set of classes
    (``weights`` keys — e.g. latency-sensitive ``"interactive"`` traffic vs.
    ``"bulk"`` backfill), each class keeps its own FIFO, and the consumer's
    :meth:`get` picks the next class by stride scheduling: the class with the
    smallest virtual *pass* value is served and its pass advances by
    ``1 / weight``.  Over any backlogged interval class service converges to
    the weight ratio, and because the minimum pass always wins, no non-empty
    class is ever starved — a flood of interactive traffic slows bulk down
    by its weight ratio, never to zero.

    A class whose queue was empty re-enters at the current virtual time
    (``max(own pass, last served pass)``), so idling earns no credit: a
    class cannot save up service while idle and then monopolize the
    consumer.  Within one class, order is strictly FIFO — :meth:`pop_matching`
    (the batching collector's gather step) only ever looks at *that class's*
    head, so coalescing never reorders a class's stream.

    The capacity bound spans all classes; like
    :class:`BoundedQueue`, ``put`` blocking on a full queue is the
    backpressure that keeps a burst from growing tail latency without bound.
    """

    def __init__(self, capacity: int, weights: Mapping[str, float]) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not weights:
            raise ValueError("WeightedFairQueue needs at least one class")
        for key, weight in weights.items():
            if not weight > 0:
                raise ValueError(f"class {key!r} weight must be > 0, got {weight}")
        self.capacity = capacity
        self.weights = {str(key): float(weight) for key, weight in weights.items()}
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)
        self._queues: Dict[str, deque] = {key: deque() for key in self.weights}
        self._pass: Dict[str, float] = {key: 0.0 for key in self.weights}
        self._vtime = 0.0
        self._size = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def put(self, item, class_key: str, timeout: Optional[float] = None) -> bool:
        """Enqueue ``item`` under ``class_key``, blocking while full.

        Returns True on success, False when the queue stayed full past
        ``timeout`` or was closed while waiting.  Unknown classes raise
        ``KeyError`` — the class set is fixed at construction so the
        consumer's scheduling state covers every queue.
        """
        if class_key not in self.weights:
            raise KeyError(
                f"unknown request class {class_key!r} "
                f"(declared: {sorted(self.weights)})"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while self._size >= self.capacity:
                if self._closed:
                    return False
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._not_full.wait(remaining)
            if self._closed:
                return False
            queue = self._queues[class_key]
            if not queue:
                # Re-entering service: no credit accrues while idle.
                self._pass[class_key] = max(self._pass[class_key], self._vtime)
            queue.append(item)
            self._size += 1
            self._not_empty.notify()
            return True

    def _select_class_locked(self) -> str:
        """The non-empty class with the smallest pass value (caller holds lock)."""
        best = None
        for key, queue in self._queues.items():
            if queue and (best is None or self._pass[key] < self._pass[best]):
                best = key
        assert best is not None, "selection requires a non-empty class"
        return best

    def get(self, timeout: Optional[float] = None):
        """Dequeue by weighted-fair order: ``(item, class_key)``.

        Returns ``(None, None)`` on timeout or when closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while self._size == 0:
                if self._closed:
                    return None, None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None, None
                self._not_empty.wait(remaining)
            key = self._select_class_locked()
            item = self._queues[key].popleft()
            self._size -= 1
            self._vtime = self._pass[key]
            self._pass[key] += 1.0 / self.weights[key]
            self._not_full.notify()
            return item, key

    def pop_matching(
        self,
        class_key: str,
        predicate: Callable[[object], bool],
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[object], str]:
        """Pop the head of ``class_key``'s queue only if the predicate holds.

        The batching collector's gather step, scoped to the class of the
        batch being formed: coalesce *consecutive* compatible requests of
        one class, stop at the first incompatible one.  Returns
        ``(item, "ok")`` on a match, ``(None, "mismatch")`` when the class
        head exists but does not match (it stays queued, per-class FIFO
        preserved), and ``(None, "empty")`` on timeout or close.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            queue = self._queues[class_key]
            while not queue:
                if self._closed:
                    return None, "empty"
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None, "empty"
                self._not_empty.wait(remaining)
            if not predicate(queue[0]):
                return None, "mismatch"
            item = queue.popleft()
            self._size -= 1
            self._vtime = self._pass[class_key]
            self._pass[class_key] += 1.0 / self.weights[class_key]
            self._not_full.notify()
            return item, "ok"

    def close(self) -> None:
        """Refuse further puts and wake every waiter; queued items stay readable."""
        with self._mutex:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def depth(self, class_key: str) -> int:
        """Queued items of one class (diagnostics)."""
        with self._mutex:
            return len(self._queues[class_key])

    def __len__(self) -> int:
        with self._mutex:
            return self._size


class BufferPool:
    """Reusable numpy buffers, keyed by (shape, dtype), under a byte budget.

    The scheduler coalesces requests by concatenating their input arrays into
    one batch array per graph input; without reuse every dispatched batch
    allocates (and garbage-collects) those staging arrays.  The pool checks
    buffers out per batch — concurrent batches of the same signature each get
    their own array, so an in-flight executor run never shares a buffer —
    and keeps up to ``max_free`` released buffers per key for the next batch.

    Retention is bounded two ways: ``max_free`` buffers per key, and
    ``max_bytes`` across *all* keys.  The byte budget is what keeps a
    long-lived serving daemon healthy: a pool keyed only per shape retains
    ``max_free`` staging arrays for every (batch size × input shape) ever
    seen, which over days of varied traffic is an unbounded leak.  When a
    release pushes the pool over budget, the least-recently-used keys are
    evicted (their buffers dropped to the allocator) until it fits; a buffer
    larger than the whole budget is simply not retained.
    """

    def __init__(self, max_free: int = 4, max_bytes: int = 128 * 1024 * 1024) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self._free: "OrderedDict[tuple, list]" = OrderedDict()
        self._mutex = threading.Lock()
        self._max_free = max_free
        self._max_bytes = max_bytes
        self._free_bytes = 0

    @property
    def free_bytes(self) -> int:
        """Bytes currently retained across all free lists."""
        with self._mutex:
            return self._free_bytes

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(int(d) for d in shape), str(dtype))
        with self._mutex:
            stack = self._free.get(key)
            if stack:
                buffer = stack.pop()
                self._free_bytes -= buffer.nbytes
                if stack:
                    self._free.move_to_end(key)
                else:
                    del self._free[key]
                return buffer
        return np.empty(key[0], dtype=key[1])

    def release(self, buffer: np.ndarray) -> None:
        key = (tuple(buffer.shape), str(buffer.dtype))
        with self._mutex:
            if self._max_free < 1 or buffer.nbytes > self._max_bytes:
                return
            stack = self._free.get(key)
            if stack is None:
                stack = self._free[key] = []
            if len(stack) >= self._max_free:
                self._free.move_to_end(key)
                return
            stack.append(buffer)
            self._free_bytes += buffer.nbytes
            self._free.move_to_end(key)
            # LRU eviction: drop buffers of the least-recently-used keys
            # until the pool fits the budget again (possibly evicting from
            # this key itself when it alone exceeds the budget).
            while self._free_bytes > self._max_bytes:
                old_key, old_stack = next(iter(self._free.items()))
                victim = old_stack.pop(0)
                self._free_bytes -= victim.nbytes
                if not old_stack:
                    del self._free[old_key]


@dataclass
class _PaddedCounter:
    """A completion counter padded to its own 'cache line'.

    The padding list mimics the cache-line padding the paper inserts around
    shared data to avoid false sharing; in Python it is documentation more
    than optimization, but it keeps the structure recognisable.
    """

    value: int = 0
    _padding: Tuple[int, ...] = tuple(0 for _ in range(15))


class _Region:
    """Fork/join state for one parallel region.

    Each :meth:`ThreadPool.parallel_for` call gets its *own* counter and
    join event, carried inside every task it enqueues.  The state used to
    live on the pool (one ``_done``/``_pending``/``_join_event`` triple
    shared by every region), which silently assumed one region at a time:
    two threads driving regions through one pool — exactly what the request
    scheduler's ``num_workers=2`` executor passes do on a shared executor —
    would reset each other's counters and trip each other's join events, so
    one caller could return before its own chunks had run.  Per-region state
    makes concurrent regions independent by construction; no region-wide
    lock is held while chunks execute.
    """

    __slots__ = ("pending", "counter", "lock", "event")

    def __init__(self, pending: int) -> None:
        self.pending = pending
        self.counter = _PaddedCounter()
        self.lock = threading.Lock()
        self.event = threading.Event()

    def task_done(self) -> None:
        with self.lock:
            self.counter.value += 1
            if self.counter.value >= self.pending:
                self.event.set()


def static_partition(total: int, num_parts: int) -> List[Tuple[int, int]]:
    """Evenly divide ``range(total)`` into ``num_parts`` contiguous chunks.

    The paper's scheduler "evenly divided the outermost loop of the operation
    into N pieces"; chunks differ in size by at most one iteration.  Empty
    chunks are omitted when ``total < num_parts``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    base = total // num_parts
    remainder = total % num_parts
    chunks: List[Tuple[int, int]] = []
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < remainder else 0)
        if size == 0:
            continue
        chunks.append((start, start + size))
        start += size
    return chunks


class ThreadPool:
    """Persistent worker pool with per-worker task queues and a fork/join API.

    Workers are created once and reused across parallel regions (the paper's
    point: OpenMP-style repeated thread launch/suppression is what hurts
    scalability).  ``num_workers`` should not exceed the number of physical
    cores; hyper-threading is deliberately not used.
    """

    _pool_counter = itertools.count()

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._queues = [SPSCQueue() for _ in range(num_workers)]
        self._shutdown = False
        pool_id = next(self._pool_counter)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"neocpu-pool{pool_id}-worker{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            task = queue.pop()
            if task is None:  # shutdown sentinel
                return
            func, args, region = task
            try:
                func(*args)
            finally:
                region.task_done()

    # ------------------------------------------------------------------ #
    # scheduler side
    # ------------------------------------------------------------------ #
    def parallel_for(self, total: int, body: Callable[[int, int], None]) -> None:
        """Run ``body(start, stop)`` over a static partition of ``range(total)``.

        This is the fork/join primitive used for the "disjoint chunks of
        OFMAP" loop of Algorithm 1.  The calling thread participates by
        executing the first chunk itself, mirroring the paper's scheduler
        thread which is also a worker.

        Reentrancy-safe: every region carries its own :class:`_Region`
        fork/join state, so concurrent ``parallel_for`` calls from different
        threads (the scheduler's parallel executor passes share one pool)
        never corrupt each other's join — each caller returns only after
        *its own* chunks have all run.
        """
        if self._shutdown:
            raise RuntimeError("thread pool has been shut down")
        chunks = static_partition(total, self.num_workers)
        if not chunks:
            return
        own_chunk, remote_chunks = chunks[0], chunks[1:]
        region = _Region(pending=len(remote_chunks))
        for worker_index, (start, stop) in enumerate(remote_chunks):
            self._queues[worker_index % self.num_workers].push(
                (body, (start, stop), region)
            )
        body(*own_chunk)
        if remote_chunks:
            region.event.wait()  # repro: noqa[REP011] -- every pushed chunk signals task_done in a finally, even when the body raises, so the region event always fires

    def map(self, func: Callable[[int], object], items: Sequence) -> List[object]:
        """Apply ``func`` to every item, preserving order."""
        results: List[object] = [None] * len(items)

        def body(start: int, stop: int) -> None:
            for i in range(start, stop):
                results[i] = func(items[i])

        self.parallel_for(len(items), body)
        return results

    def shutdown(self) -> None:
        """Stop all workers; the pool cannot be reused afterwards."""
        if self._shutdown:
            return
        self._shutdown = True
        for queue in self._queues:
            queue.push(None)
        for worker in self._workers:
            worker.join(timeout=2.0)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def parallel_for(total: int, body: Callable[[int, int], None], num_workers: int) -> None:
    """One-shot helper: create a pool, run a region, shut the pool down."""
    with ThreadPool(num_workers) as pool:
        pool.parallel_for(total, body)

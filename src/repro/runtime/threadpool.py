"""Custom thread pool with single-producer single-consumer task queues.

Section 3.1.2 of the paper replaces OpenMP with a hand-rolled thread pool:
one worker per physical core, tasks distributed through per-worker
single-producer/single-consumer lock-free queues, fork/join coordinated with
atomics, threads pinned to disjoint cores, cache-line padding to avoid false
sharing.

This module reproduces that *structure* faithfully in Python: per-worker SPSC
queues (a deque written only by the scheduler and read only by its worker),
an atomic-style completion counter for the join, static partitioning of the
outermost loop into one contiguous chunk per worker, and no use of
hyper-threads.  What it cannot reproduce is the *performance* (the GIL
serializes numpy-free Python code), which is why the scalability figures come
from the analytical model in :mod:`repro.costmodel.parallel`; the thread pool
here is exercised functionally by the executor's parallel convolution path
and by the test suite.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BoundedQueue",
    "BufferPool",
    "SPSCQueue",
    "ThreadPool",
    "parallel_for",
    "static_partition",
]


class SPSCQueue:
    """A single-producer single-consumer queue.

    Only the scheduler thread pushes and only the owning worker pops, so a
    ``collections.deque`` (append/popleft are atomic under the GIL) gives the
    same progress guarantees the paper's lock-free queue provides, without a
    lock in the fast path.  A condition variable is used purely to let the
    worker sleep when idle.
    """

    def __init__(self) -> None:
        self._items: deque = deque()
        self._not_empty = threading.Condition(threading.Lock())

    def push(self, item) -> None:
        """Producer side: enqueue a task."""
        self._items.append(item)
        with self._not_empty:
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None):
        """Consumer side: dequeue a task, blocking while empty."""
        while True:
            try:
                return self._items.popleft()
            except IndexError:
                with self._not_empty:
                    if not self._items:
                        self._not_empty.wait(timeout)
                        if timeout is not None and not self._items:
                            raise TimeoutError("SPSC queue pop timed out") from None

    def __len__(self) -> int:
        return len(self._items)


class BoundedQueue:
    """A bounded multi-producer single-consumer FIFO.

    This is the request queue of the serving scheduler
    (:class:`repro.api.scheduler.RequestScheduler`): many submitter threads
    :meth:`put` concurrently, one collector thread consumes.  ``put`` blocks
    while the queue is at capacity — that is the backpressure that keeps a
    traffic burst from growing the queue (and the tail latency) without bound
    — and both sides honor timeouts so a caller with a deadline is never
    parked forever.

    Unlike :class:`SPSCQueue`, every operation takes the lock: with multiple
    producers the lock-free deque trick no longer applies, and the consumer
    needs an atomic look-at-head-then-pop (:meth:`pop_matching`) to gather
    shape-compatible requests without reordering the stream.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def put(self, item, timeout: Optional[float] = None) -> bool:
        """Enqueue ``item``, blocking while the queue is full.

        Returns True on success, False when the queue stayed full past
        ``timeout`` or was closed while waiting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while len(self._items) >= self.capacity:
                if self._closed:
                    return False
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._not_full.wait(remaining)
            if self._closed:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None):
        """Dequeue the head item, or return None on timeout / closed-and-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while not self._items:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def pop_matching(
        self, predicate: Callable[[object], bool], timeout: Optional[float] = None
    ) -> Tuple[Optional[object], str]:
        """Pop the head item only if ``predicate(head)`` holds.

        Waits up to ``timeout`` for an item to arrive when empty.  Returns
        ``(item, "ok")`` on a match, ``(None, "mismatch")`` when the head
        exists but does not match (it stays queued, FIFO order preserved), and
        ``(None, "empty")`` on timeout or close.  This is the batching
        collector's gather step: coalesce *consecutive* compatible requests,
        stop at the first incompatible one.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._mutex:
            while not self._items:
                if self._closed:
                    return None, "empty"
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None, "empty"
                self._not_empty.wait(remaining)
            if not predicate(self._items[0]):
                return None, "mismatch"
            item = self._items.popleft()
            self._not_full.notify()
            return item, "ok"

    def close(self) -> None:
        """Refuse further puts and wake every waiter; queued items stay readable."""
        with self._mutex:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._items)


class BufferPool:
    """Reusable numpy buffers, keyed by (shape, dtype).

    The scheduler coalesces requests by concatenating their input arrays into
    one batch array per graph input; without reuse every dispatched batch
    allocates (and garbage-collects) those staging arrays.  The pool checks
    buffers out per batch — concurrent batches of the same signature each get
    their own array, so an in-flight executor run never shares a buffer —
    and keeps up to ``max_free`` released buffers per key for the next batch.
    """

    def __init__(self, max_free: int = 4) -> None:
        self._free: dict = {}
        self._mutex = threading.Lock()
        self._max_free = max_free

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(int(d) for d in shape), str(dtype))
        with self._mutex:
            stack = self._free.get(key)
            if stack:
                return stack.pop()
        return np.empty(key[0], dtype=key[1])

    def release(self, buffer: np.ndarray) -> None:
        key = (tuple(buffer.shape), str(buffer.dtype))
        with self._mutex:
            stack = self._free.setdefault(key, [])
            if len(stack) < self._max_free:
                stack.append(buffer)


@dataclass
class _PaddedCounter:
    """A completion counter padded to its own 'cache line'.

    The padding list mimics the cache-line padding the paper inserts around
    shared data to avoid false sharing; in Python it is documentation more
    than optimization, but it keeps the structure recognisable.
    """

    value: int = 0
    _padding: Tuple[int, ...] = tuple(0 for _ in range(15))


def static_partition(total: int, num_parts: int) -> List[Tuple[int, int]]:
    """Evenly divide ``range(total)`` into ``num_parts`` contiguous chunks.

    The paper's scheduler "evenly divided the outermost loop of the operation
    into N pieces"; chunks differ in size by at most one iteration.  Empty
    chunks are omitted when ``total < num_parts``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    base = total // num_parts
    remainder = total % num_parts
    chunks: List[Tuple[int, int]] = []
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < remainder else 0)
        if size == 0:
            continue
        chunks.append((start, start + size))
        start += size
    return chunks


class ThreadPool:
    """Persistent worker pool with per-worker task queues and a fork/join API.

    Workers are created once and reused across parallel regions (the paper's
    point: OpenMP-style repeated thread launch/suppression is what hurts
    scalability).  ``num_workers`` should not exceed the number of physical
    cores; hyper-threading is deliberately not used.
    """

    _pool_counter = itertools.count()

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._queues = [SPSCQueue() for _ in range(num_workers)]
        self._done = _PaddedCounter()
        self._done_lock = threading.Lock()
        self._join_event = threading.Event()
        self._shutdown = False
        self._pending = 0
        pool_id = next(self._pool_counter)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"neocpu-pool{pool_id}-worker{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            task = queue.pop()
            if task is None:  # shutdown sentinel
                return
            func, args = task
            try:
                func(*args)
            finally:
                with self._done_lock:
                    self._done.value += 1
                    if self._done.value >= self._pending:
                        self._join_event.set()

    # ------------------------------------------------------------------ #
    # scheduler side
    # ------------------------------------------------------------------ #
    def parallel_for(self, total: int, body: Callable[[int, int], None]) -> None:
        """Run ``body(start, stop)`` over a static partition of ``range(total)``.

        This is the fork/join primitive used for the "disjoint chunks of
        OFMAP" loop of Algorithm 1.  The calling thread participates by
        executing the first chunk itself, mirroring the paper's scheduler
        thread which is also a worker.
        """
        if self._shutdown:
            raise RuntimeError("thread pool has been shut down")
        chunks = static_partition(total, self.num_workers)
        if not chunks:
            return
        own_chunk, remote_chunks = chunks[0], chunks[1:]
        self._join_event.clear()
        with self._done_lock:
            self._done.value = 0
            self._pending = len(remote_chunks)
        for worker_index, (start, stop) in enumerate(remote_chunks):
            self._queues[worker_index % self.num_workers].push((body, (start, stop)))
        body(*own_chunk)
        if remote_chunks:
            self._join_event.wait()

    def map(self, func: Callable[[int], object], items: Sequence) -> List[object]:
        """Apply ``func`` to every item, preserving order."""
        results: List[object] = [None] * len(items)

        def body(start: int, stop: int) -> None:
            for i in range(start, stop):
                results[i] = func(items[i])

        self.parallel_for(len(items), body)
        return results

    def shutdown(self) -> None:
        """Stop all workers; the pool cannot be reused afterwards."""
        if self._shutdown:
            return
        self._shutdown = True
        with self._done_lock:
            self._pending = 0
        for queue in self._queues:
            queue.push(None)
        for worker in self._workers:
            worker.join(timeout=2.0)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def parallel_for(total: int, body: Callable[[int, int], None], num_workers: int) -> None:
    """One-shot helper: create a pool, run a region, shut the pool down."""
    with ThreadPool(num_workers) as pool:
        pool.parallel_for(total, body)

"""Runtime substrate: graph executor, compiled module, thread pool, profiler."""

from .executor import GraphExecutor, initialize_parameters
from .module import CompiledModule
from .profiler import Timer, format_report, time_callable, top_costs
from .threadpool import SPSCQueue, ThreadPool, parallel_for, static_partition

__all__ = [
    "CompiledModule",
    "GraphExecutor",
    "SPSCQueue",
    "ThreadPool",
    "Timer",
    "format_report",
    "initialize_parameters",
    "parallel_for",
    "static_partition",
    "time_callable",
    "top_costs",
]

"""Runtime substrate: graph executor, compiled module + artifact format,
thread pool, profiler."""

from .artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    StaleArtifactError,
    compilation_fingerprint,
    graph_fingerprint,
    load_module,
    read_manifest,
    save_module,
)
from .executor import GraphExecutor, initialize_parameters
from .module import CompiledModule
from .profiler import Timer, format_report, time_callable, top_costs
from .threadpool import (
    BoundedQueue,
    BufferPool,
    SPSCQueue,
    ThreadPool,
    parallel_for,
    static_partition,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "BoundedQueue",
    "BufferPool",
    "CompiledModule",
    "GraphExecutor",
    "SPSCQueue",
    "StaleArtifactError",
    "ThreadPool",
    "Timer",
    "compilation_fingerprint",
    "format_report",
    "graph_fingerprint",
    "initialize_parameters",
    "load_module",
    "parallel_for",
    "read_manifest",
    "save_module",
    "static_partition",
    "time_callable",
    "top_costs",
]

"""Runtime substrate: graph executor, compiled module + artifact format,
thread pool, profiler."""

from .artifact import (
    ARTIFACT_VERSION,
    SUPPORTED_VERSIONS,
    ArtifactError,
    StaleArtifactError,
    bundle_fingerprint,
    compilation_fingerprint,
    graph_fingerprint,
    load_member,
    load_module,
    load_source,
    manifest_targets,
    read_manifest,
    save_bundle,
    save_module,
    verify_artifact,
)
from .executor import GraphExecutor, initialize_parameters
from .module import CompiledModule
from .profiler import Timer, format_report, time_callable, top_costs
from .threadpool import (
    BoundedQueue,
    BufferPool,
    SPSCQueue,
    ThreadPool,
    WeightedFairQueue,
    parallel_for,
    static_partition,
)

__all__ = [
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "ArtifactError",
    "BoundedQueue",
    "BufferPool",
    "CompiledModule",
    "GraphExecutor",
    "SPSCQueue",
    "StaleArtifactError",
    "ThreadPool",
    "Timer",
    "WeightedFairQueue",
    "bundle_fingerprint",
    "compilation_fingerprint",
    "format_report",
    "graph_fingerprint",
    "initialize_parameters",
    "load_member",
    "load_module",
    "load_source",
    "manifest_targets",
    "parallel_for",
    "read_manifest",
    "save_bundle",
    "save_module",
    "static_partition",
    "time_callable",
    "top_costs",
]

"""Compiled module: the deployable artifact produced by the compiler.

The paper emphasizes that NeoCPU "produces a standalone module with minimal
size that does not depend on either the frameworks or the high-performance
kernel libraries".  Here the module bundles the optimized graph, the chosen
per-convolution schedules, the target description and the compile
configuration, and offers the three things a user wants from it: functional
execution (:meth:`create_executor`), latency estimation / profiling
(:meth:`estimate_latency`, :meth:`profile`), and durable persistence
(:meth:`save` / :meth:`load` — see :mod:`repro.runtime.artifact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional

import numpy as np

from ..costmodel.graph_cost import GraphCostModel, LatencyReport
from ..costmodel.parallel import ThreadingModel
from ..graph.graph import Graph
from ..hardware.cpu import CPUSpec
from ..schedule.template import ConvSchedule
from .executor import GraphExecutor

__all__ = ["CompiledModule"]


@dataclass
class CompiledModule:
    """An optimized, target-specific CNN inference module."""

    graph: Graph
    cpu: CPUSpec
    config: "object"
    schedules: Dict[str, ConvSchedule] = field(default_factory=dict)
    search_method: str = "none"
    pass_report: str = ""
    #: Compilation fingerprint this module was built (or loaded) under; empty
    #: for modules compiled outside an :class:`~repro.api.Optimizer` session.
    fingerprint: str = ""

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def create_executor(
        self,
        params: Optional[Mapping[str, np.ndarray]] = None,
        seed: int = 0,
    ) -> GraphExecutor:
        """Build a functional executor over the optimized graph."""
        return GraphExecutor(self.graph, params=params, seed=seed)

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        params: Optional[Mapping[str, np.ndarray]] = None,
        seed: int = 0,
    ):
        """One-shot convenience: bind parameters and run a single inference."""
        return self.create_executor(params, seed).run(inputs)

    # ------------------------------------------------------------------ #
    # latency estimation
    # ------------------------------------------------------------------ #
    def _cost_model(self, threading: Optional[ThreadingModel]) -> GraphCostModel:
        config = self.config
        return GraphCostModel(
            self.cpu,
            threading=threading if threading is not None else config.threading,
            per_op_overhead_s=getattr(config, "per_op_overhead_s", 1.0e-6),
        )

    def profile(
        self,
        num_threads: Optional[int] = None,
        threading: Optional[ThreadingModel] = None,
    ) -> LatencyReport:
        """Per-node latency breakdown from the analytical cost model."""
        threads = num_threads
        if threads is None:
            threads = getattr(self.config, "num_threads", None) or self.cpu.num_cores
        return self._cost_model(threading).estimate(self.graph, threads)

    def estimate_latency(
        self,
        num_threads: Optional[int] = None,
        threading: Optional[ThreadingModel] = None,
    ) -> float:
        """Estimated end-to-end latency in seconds."""
        return self.profile(num_threads, threading).total_s

    def estimate_latency_ms(
        self,
        num_threads: Optional[int] = None,
        threading: Optional[ThreadingModel] = None,
    ) -> float:
        """Estimated end-to-end latency in milliseconds."""
        return self.estimate_latency(num_threads, threading) * 1e3

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path", fingerprint: Optional[str] = None) -> Path:
        """Persist this module (graph, schedules, params, config) to a file.

        The artifact records a compilation fingerprint (defaulting to the
        target + configuration fingerprint) so a later :meth:`load` can
        refuse to serve schedules compiled under different settings.
        """
        from .artifact import save_module

        return save_module(self, path, fingerprint=fingerprint or self.fingerprint or None)

    @classmethod
    def load(
        cls,
        path: "str | Path",
        expected_fingerprint: Optional[str] = None,
    ) -> "CompiledModule":
        """Load a module saved by :meth:`save`.

        Raises :class:`~repro.runtime.artifact.StaleArtifactError` when
        ``expected_fingerprint`` is given and does not match the artifact.
        """
        from .artifact import load_module

        return load_module(path, expected_fingerprint=expected_fingerprint)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        lines = [
            f"CompiledModule({self.graph.name} -> {self.cpu.name})",
            f"  opt level      : {getattr(self.config, 'opt_level', '?')}",
            f"  search method  : {self.search_method}",
            f"  tuned convs    : {len(self.schedules)}",
            f"  graph nodes    : {len(self.graph)}",
            f"  est. latency   : {self.estimate_latency_ms():.2f} ms "
            f"({self.cpu.num_cores} threads)",
        ]
        return "\n".join(lines)

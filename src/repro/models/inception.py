"""Inception-v3 (Szegedy et al., CVPR 2016).

Inception-v3 mixes many convolution shapes — 1x1, 3x3, 5x5 and the factorized
1x7 / 7x1 pairs — across parallel branches joined by channel concatenation.
That diversity of workloads is exactly what the per-workload local search is
for, and the branch/concat structure creates the layout-coupling the global
search has to resolve.  The evaluation feeds 299x299 inputs (section 4).
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..graph.node import Node
from .common import IMAGENET_CLASSES, classifier_head, conv_block

__all__ = ["inception_v3"]


def _inception_a(builder: GraphBuilder, x: Node, pool_features: int, name: str) -> Node:
    branch1 = conv_block(builder, x, 64, 1, name=f"{name}_b1_1x1")

    branch2 = conv_block(builder, x, 48, 1, name=f"{name}_b2_1x1")
    branch2 = conv_block(builder, branch2, 64, 5, padding=2, name=f"{name}_b2_5x5")

    branch3 = conv_block(builder, x, 64, 1, name=f"{name}_b3_1x1")
    branch3 = conv_block(builder, branch3, 96, 3, padding=1, name=f"{name}_b3_3x3a")
    branch3 = conv_block(builder, branch3, 96, 3, padding=1, name=f"{name}_b3_3x3b")

    branch4 = builder.avg_pool2d(x, 3, 1, 1, name=f"{name}_b4_pool")
    branch4 = conv_block(builder, branch4, pool_features, 1, name=f"{name}_b4_1x1")

    return builder.concat([branch1, branch2, branch3, branch4], name=f"{name}_concat")


def _inception_b(builder: GraphBuilder, x: Node, name: str) -> Node:
    branch1 = conv_block(builder, x, 384, 3, stride=2, name=f"{name}_b1_3x3")

    branch2 = conv_block(builder, x, 64, 1, name=f"{name}_b2_1x1")
    branch2 = conv_block(builder, branch2, 96, 3, padding=1, name=f"{name}_b2_3x3a")
    branch2 = conv_block(builder, branch2, 96, 3, stride=2, name=f"{name}_b2_3x3b")

    branch3 = builder.max_pool2d(x, 3, 2, name=f"{name}_b3_pool")

    return builder.concat([branch1, branch2, branch3], name=f"{name}_concat")


def _inception_c(builder: GraphBuilder, x: Node, channels_7x7: int, name: str) -> Node:
    c7 = channels_7x7
    branch1 = conv_block(builder, x, 192, 1, name=f"{name}_b1_1x1")

    branch2 = conv_block(builder, x, c7, 1, name=f"{name}_b2_1x1")
    branch2 = conv_block(builder, branch2, c7, (1, 7), padding=(0, 3), name=f"{name}_b2_1x7")
    branch2 = conv_block(builder, branch2, 192, (7, 1), padding=(3, 0), name=f"{name}_b2_7x1")

    branch3 = conv_block(builder, x, c7, 1, name=f"{name}_b3_1x1")
    branch3 = conv_block(builder, branch3, c7, (7, 1), padding=(3, 0), name=f"{name}_b3_7x1a")
    branch3 = conv_block(builder, branch3, c7, (1, 7), padding=(0, 3), name=f"{name}_b3_1x7a")
    branch3 = conv_block(builder, branch3, c7, (7, 1), padding=(3, 0), name=f"{name}_b3_7x1b")
    branch3 = conv_block(builder, branch3, 192, (1, 7), padding=(0, 3), name=f"{name}_b3_1x7b")

    branch4 = builder.avg_pool2d(x, 3, 1, 1, name=f"{name}_b4_pool")
    branch4 = conv_block(builder, branch4, 192, 1, name=f"{name}_b4_1x1")

    return builder.concat([branch1, branch2, branch3, branch4], name=f"{name}_concat")


def _inception_d(builder: GraphBuilder, x: Node, name: str) -> Node:
    branch1 = conv_block(builder, x, 192, 1, name=f"{name}_b1_1x1")
    branch1 = conv_block(builder, branch1, 320, 3, stride=2, name=f"{name}_b1_3x3")

    branch2 = conv_block(builder, x, 192, 1, name=f"{name}_b2_1x1")
    branch2 = conv_block(builder, branch2, 192, (1, 7), padding=(0, 3), name=f"{name}_b2_1x7")
    branch2 = conv_block(builder, branch2, 192, (7, 1), padding=(3, 0), name=f"{name}_b2_7x1")
    branch2 = conv_block(builder, branch2, 192, 3, stride=2, name=f"{name}_b2_3x3")

    branch3 = builder.max_pool2d(x, 3, 2, name=f"{name}_b3_pool")

    return builder.concat([branch1, branch2, branch3], name=f"{name}_concat")


def _inception_e(builder: GraphBuilder, x: Node, name: str) -> Node:
    branch1 = conv_block(builder, x, 320, 1, name=f"{name}_b1_1x1")

    branch2 = conv_block(builder, x, 384, 1, name=f"{name}_b2_1x1")
    branch2a = conv_block(builder, branch2, 384, (1, 3), padding=(0, 1), name=f"{name}_b2_1x3")
    branch2b = conv_block(builder, branch2, 384, (3, 1), padding=(1, 0), name=f"{name}_b2_3x1")
    branch2 = builder.concat([branch2a, branch2b], name=f"{name}_b2_concat")

    branch3 = conv_block(builder, x, 448, 1, name=f"{name}_b3_1x1")
    branch3 = conv_block(builder, branch3, 384, 3, padding=1, name=f"{name}_b3_3x3")
    branch3a = conv_block(builder, branch3, 384, (1, 3), padding=(0, 1), name=f"{name}_b3_1x3")
    branch3b = conv_block(builder, branch3, 384, (3, 1), padding=(1, 0), name=f"{name}_b3_3x1")
    branch3 = builder.concat([branch3a, branch3b], name=f"{name}_b3_concat")

    branch4 = builder.avg_pool2d(x, 3, 1, 1, name=f"{name}_b4_pool")
    branch4 = conv_block(builder, branch4, 192, 1, name=f"{name}_b4_1x1")

    return builder.concat([branch1, branch2, branch3, branch4], name=f"{name}_concat")


def inception_v3(
    batch: int = 1,
    image_size: int = 299,
    num_classes: int = IMAGENET_CLASSES,
) -> Graph:
    """Build the Inception-v3 classifier graph (299x299 inputs)."""
    builder = GraphBuilder("inception_v3")
    data = builder.input("data", (batch, 3, image_size, image_size))

    # Stem.
    x = conv_block(builder, data, 32, 3, stride=2, name="stem_conv1")
    x = conv_block(builder, x, 32, 3, name="stem_conv2")
    x = conv_block(builder, x, 64, 3, padding=1, name="stem_conv3")
    x = builder.max_pool2d(x, 3, 2, name="stem_pool1")
    x = conv_block(builder, x, 80, 1, name="stem_conv4")
    x = conv_block(builder, x, 192, 3, name="stem_conv5")
    x = builder.max_pool2d(x, 3, 2, name="stem_pool2")

    # Inception blocks.
    x = _inception_a(builder, x, 32, name="mixed1")
    x = _inception_a(builder, x, 64, name="mixed2")
    x = _inception_a(builder, x, 64, name="mixed3")
    x = _inception_b(builder, x, name="mixed4")
    for index, c7 in enumerate([128, 160, 160, 192]):
        x = _inception_c(builder, x, c7, name=f"mixed{5 + index}")
    x = _inception_d(builder, x, name="mixed9")
    x = _inception_e(builder, x, name="mixed10")
    x = _inception_e(builder, x, name="mixed11")

    output = classifier_head(builder, x, num_classes)
    return builder.build(output)

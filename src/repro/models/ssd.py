"""SSD object detector with a ResNet-50 backbone (Liu et al., ECCV 2016).

The paper's hardest model for the global search: the detection head taps
several feature maps, adds extra convolution stages, and joins everything
through reshapes and concatenations — enough coupling that the exact dynamic
program blows up and the PBQP approximation is used instead (section 3.3.2).
TensorFlow's poor SSD latency (Table 2) is attributed to the runtime branches
this head introduces, and OpenVINO excludes the final multibox detection from
its measurement — both behaviours are reproduced by the baseline profiles.

Input resolution follows the paper: 512x512.

The detection heads are batch-polymorphic: their reshapes declare a ``-1``
batch extent (never the build-time batch), so the graph keeps a free leading
batch dim end to end and SSD requests coalesce under the dynamic-batching
scheduler exactly like the classification models.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..graph.node import Node
from ..ops.ssd_ops import multibox_prior
from .common import conv_block
from .resnet import resnet_backbone

__all__ = ["ssd_resnet50", "SSD_NUM_CLASSES", "SSD_ANCHOR_COUNTS"]

#: PASCAL-VOC-style class count (20 foreground classes + background).
SSD_NUM_CLASSES = 20
#: Anchors per spatial location for each detection feature map.
SSD_ANCHOR_COUNTS: Tuple[int, ...] = (4, 6, 6, 6, 4, 4)
#: Anchor scales for each feature map (fraction of the image size).
_ANCHOR_SIZES: Tuple[float, ...] = (0.1, 0.2, 0.37, 0.54, 0.71, 0.88)
_ANCHOR_RATIOS: Tuple[float, ...] = (1.0, 2.0, 0.5)


def _extra_feature_layers(builder: GraphBuilder, x: Node) -> List[Node]:
    """Extra down-sampling stages appended after the ResNet trunk."""
    extras = []
    channels = [(256, 512), (128, 256), (128, 256), (128, 256)]
    for index, (mid, out) in enumerate(channels):
        x = conv_block(builder, x, mid, 1, name=f"extra{index + 1}_conv1")
        x = conv_block(builder, x, out, 3, stride=2, padding=1,
                       name=f"extra{index + 1}_conv2")
        extras.append(x)
    return extras


def _prediction_heads(
    builder: GraphBuilder,
    features: Sequence[Node],
    num_classes: int,
) -> Tuple[Node, Node, int]:
    """Class and box-regression heads on every detection feature map.

    Returns the concatenated class predictions of shape
    ``(N, A_total, num_classes + 1)``, the concatenated box regressions of
    shape ``(N, A_total, 4)``, and the total anchor count.
    """
    cls_parts: List[Node] = []
    loc_parts: List[Node] = []
    total_anchors = 0
    for index, (feature, anchors) in enumerate(zip(features, SSD_ANCHOR_COUNTS)):
        height = feature.spec.axis_extent("H")
        width = feature.spec.axis_extent("W")
        total_anchors += height * width * anchors

        # The head reshapes declare a `-1` batch extent: the trailing extents
        # account for exactly one sample, so the leading dim stays the free
        # (symbolic) batch axis and the graph remains batch-stackable under
        # the dynamic-batching scheduler.  Baking the build-time batch in
        # here is what used to force SSD requests onto the serial path.
        cls_channels = anchors * (num_classes + 1)
        cls = builder.conv2d(feature, cls_channels, 3, padding=1, use_bias=True,
                             name=f"cls_pred{index + 1}")
        cls = builder.transpose(cls, (0, 2, 3, 1), name=f"cls_pred{index + 1}_t")
        cls = builder.reshape(
            cls, (-1, height * width * anchors, num_classes + 1),
            name=f"cls_pred{index + 1}_r",
        )
        cls_parts.append(cls)

        loc_channels = anchors * 4
        loc = builder.conv2d(feature, loc_channels, 3, padding=1, use_bias=True,
                             name=f"loc_pred{index + 1}")
        loc = builder.transpose(loc, (0, 2, 3, 1), name=f"loc_pred{index + 1}_t")
        loc = builder.reshape(
            loc, (-1, height * width * anchors, 4), name=f"loc_pred{index + 1}_r"
        )
        loc_parts.append(loc)

    cls_concat = builder.concat(cls_parts, axis="C", name="cls_concat")
    loc_concat = builder.concat(loc_parts, axis="C", name="loc_concat")
    return cls_concat, loc_concat, total_anchors


def _anchor_table(features: Sequence[Node], image_size: int) -> np.ndarray:
    """Pre-computed anchor boxes for every detection feature map."""
    tables = []
    for index, (feature, anchors) in enumerate(zip(features, SSD_ANCHOR_COUNTS)):
        height = feature.spec.axis_extent("H")
        width = feature.spec.axis_extent("W")
        size = _ANCHOR_SIZES[index]
        sizes = [size, size * 1.25][: max(1, anchors - len(_ANCHOR_RATIOS) + 1)]
        ratios = list(_ANCHOR_RATIOS[: anchors - len(sizes) + 1])
        table = multibox_prior((height, width), image_size, sizes, ratios)
        # multibox_prior may generate a different per-location count than the
        # head expects for unusual size/ratio splits; trim or tile to match.
        expected = height * width * anchors
        if table.shape[0] != expected:
            reps = -(-expected // table.shape[0])
            table = np.tile(table, (reps, 1))[:expected]
        tables.append(table)
    return np.concatenate(tables, axis=0).astype(np.float32)


def ssd_resnet50(
    batch: int = 1,
    image_size: int = 512,
    num_classes: int = SSD_NUM_CLASSES,
) -> Graph:
    """Build the SSD-ResNet-50 detector graph (512x512 inputs)."""
    builder = GraphBuilder("ssd_resnet50")
    data = builder.input("data", (batch, 3, image_size, image_size))

    # ResNet-50 trunk; tap the stride-16 stage as the first detection map and
    # continue from the final stride-32 stage.
    final, stage3 = resnet_backbone(builder, data, 50, output_stages=(3,))
    features: List[Node] = [stage3, final]
    features.extend(_extra_feature_layers(builder, final))

    cls_concat, loc_concat, total_anchors = _prediction_heads(
        builder, features, num_classes
    )

    # Class probabilities: softmax over the class axis, presented to the
    # detection operator as (N, num_classes + 1, A_total).
    cls_scores = builder.transpose(cls_concat, (0, 2, 1), name="cls_scores")
    cls_probs = builder.softmax(cls_scores, axis=1, name="cls_probs")

    anchors_value = _anchor_table(features, image_size)
    anchors = builder.constant(
        "anchors", anchors_value.shape, layout="AB", value=anchors_value
    )

    detections = builder.multibox_detection(
        cls_probs, loc_concat, anchors, max_detections=100, name="detections"
    )
    graph = builder.build(detections)
    if anchors_value.shape[0] != total_anchors:
        raise AssertionError(
            f"anchor table has {anchors_value.shape[0]} rows, heads predict "
            f"{total_anchors} anchors"
        )
    return graph

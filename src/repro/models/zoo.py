"""Model zoo entry point.

``get_model(name)`` builds any of the 15 CNN models of the paper's evaluation
(Table 2) with the input resolution used there: 224x224 for ResNet, VGG and
DenseNet, 299x299 for Inception-v3 and 512x512 for SSD-ResNet-50, all with
batch size 1 by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..graph.graph import Graph
from .densenet import densenet121, densenet161, densenet169, densenet201
from .inception import inception_v3
from .resnet import resnet18, resnet34, resnet50, resnet101, resnet152
from .ssd import ssd_resnet50
from .vgg import vgg11, vgg13, vgg16, vgg19

__all__ = ["ModelInfo", "MODEL_REGISTRY", "EVALUATION_MODELS", "get_model", "list_models"]


@dataclass(frozen=True)
class ModelInfo:
    """Metadata about one evaluation model."""

    name: str
    builder: Callable[..., Graph]
    image_size: int
    family: str
    description: str

    def build(self, batch: int = 1) -> Graph:
        return self.builder(batch=batch, image_size=self.image_size)


MODEL_REGISTRY: Dict[str, ModelInfo] = {
    "resnet-18": ModelInfo("resnet-18", resnet18, 224, "resnet", "ResNet-18 classifier"),
    "resnet-34": ModelInfo("resnet-34", resnet34, 224, "resnet", "ResNet-34 classifier"),
    "resnet-50": ModelInfo("resnet-50", resnet50, 224, "resnet", "ResNet-50 classifier"),
    "resnet-101": ModelInfo("resnet-101", resnet101, 224, "resnet", "ResNet-101 classifier"),
    "resnet-152": ModelInfo("resnet-152", resnet152, 224, "resnet", "ResNet-152 classifier"),
    "vgg-11": ModelInfo("vgg-11", vgg11, 224, "vgg", "VGG-11 classifier"),
    "vgg-13": ModelInfo("vgg-13", vgg13, 224, "vgg", "VGG-13 classifier"),
    "vgg-16": ModelInfo("vgg-16", vgg16, 224, "vgg", "VGG-16 classifier"),
    "vgg-19": ModelInfo("vgg-19", vgg19, 224, "vgg", "VGG-19 classifier"),
    "densenet-121": ModelInfo(
        "densenet-121", densenet121, 224, "densenet", "DenseNet-121 classifier"
    ),
    "densenet-161": ModelInfo(
        "densenet-161", densenet161, 224, "densenet", "DenseNet-161 classifier"
    ),
    "densenet-169": ModelInfo(
        "densenet-169", densenet169, 224, "densenet", "DenseNet-169 classifier"
    ),
    "densenet-201": ModelInfo(
        "densenet-201", densenet201, 224, "densenet", "DenseNet-201 classifier"
    ),
    "inception-v3": ModelInfo(
        "inception-v3", inception_v3, 299, "inception", "Inception-v3 classifier"
    ),
    "ssd-resnet-50": ModelInfo(
        "ssd-resnet-50", ssd_resnet50, 512, "ssd", "SSD object detector, ResNet-50 base"
    ),
}

#: The 15 models of Table 2, in the paper's column order.
EVALUATION_MODELS: Tuple[str, ...] = (
    "resnet-18",
    "resnet-34",
    "resnet-50",
    "resnet-101",
    "resnet-152",
    "vgg-11",
    "vgg-13",
    "vgg-16",
    "vgg-19",
    "densenet-121",
    "densenet-161",
    "densenet-169",
    "densenet-201",
    "inception-v3",
    "ssd-resnet-50",
)

_ALIASES = {name.replace("-", ""): name for name in MODEL_REGISTRY}
_ALIASES.update({name.replace("-", "_"): name for name in MODEL_REGISTRY})


def get_model(name: str, batch: int = 1) -> Graph:
    """Build an evaluation model by name.

    Accepts the canonical dashed names (``"resnet-50"``) as well as the
    undashed/underscored aliases (``"resnet50"``, ``"resnet_50"``).

    Raises:
        KeyError: for unknown model names.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_REGISTRY))}"
        )
    return MODEL_REGISTRY[key].build(batch=batch)


def list_models(family: str = "") -> List[str]:
    """Names of all registered models, optionally filtered by family."""
    names = [
        info.name
        for info in MODEL_REGISTRY.values()
        if not family or info.family == family
    ]
    return sorted(names)

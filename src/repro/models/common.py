"""Shared building blocks for the model zoo.

The 15 evaluation models (section 4 of the paper: ResNet, VGG, DenseNet,
Inception-v3 and SSD-ResNet-50) are built with the graph builder; the helpers
here factor out the conv+BN+ReLU pattern and the classifier head they all
share.  All models take a single image per inference (batch 1), matching the
paper's latency measurements, unless a different batch size is requested.

The requested batch is only the *nominal* extent: every zoo model is
batch-polymorphic.  ``builder.input`` declares a symbolic leading batch dim,
and the blocks here — including ``builder.flatten`` in the classifier head,
which always keeps the leading ``N`` axis free rather than folding it into
the feature extent — preserve it, so the dynamic-batching scheduler can
stack concurrent requests for any of these models.  New model code must
follow the same convention: never bake ``spec.axis_extent("N")`` into an
operator attribute (use ``-1`` in reshapes instead).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..graph.builder import GraphBuilder
from ..graph.node import Node

__all__ = ["conv_block", "conv_bn", "classifier_head", "IMAGENET_CLASSES"]

#: Number of output classes of the ImageNet-1k classifiers.
IMAGENET_CLASSES = 1000

PairLike = Union[int, Tuple[int, int]]


def conv_bn(
    builder: GraphBuilder,
    data: Node,
    out_channels: int,
    kernel: PairLike,
    stride: PairLike = 1,
    padding: PairLike = 0,
    groups: int = 1,
    name: Optional[str] = None,
) -> Node:
    """Convolution followed by batch norm (no activation)."""
    conv = builder.conv2d(
        data,
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        padding=padding,
        groups=groups,
        use_bias=False,
        name=name,
    )
    return builder.batch_norm(conv, name=f"{name}_bn" if name else None)


def conv_block(
    builder: GraphBuilder,
    data: Node,
    out_channels: int,
    kernel: PairLike,
    stride: PairLike = 1,
    padding: PairLike = 0,
    groups: int = 1,
    name: Optional[str] = None,
) -> Node:
    """The ubiquitous convolution + batch norm + ReLU block."""
    bn = conv_bn(builder, data, out_channels, kernel, stride, padding, groups, name)
    return builder.relu(bn, name=f"{name}_relu" if name else None)


def classifier_head(
    builder: GraphBuilder,
    data: Node,
    num_classes: int = IMAGENET_CLASSES,
    name: str = "fc",
) -> Node:
    """Global average pooling + flatten + dense + softmax classifier."""
    pooled = builder.global_avg_pool2d(data, name="global_pool")
    flat = builder.flatten(pooled, name="flatten")
    logits = builder.dense(flat, units=num_classes, name=name)
    return builder.softmax(logits, axis=-1, name="prob")

"""ResNet v1 model family (He et al., CVPR 2016).

ResNet-18/34 use basic (3x3 + 3x3) residual blocks; ResNet-50/101/152 use
bottleneck (1x1 + 3x3 + 1x1) blocks.  These are the models for which the
paper reports the largest benefit from the global search, because the
residual additions couple the layout choices of convolutions on both branches
(section 4.2.3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..graph.node import Node
from .common import IMAGENET_CLASSES, classifier_head, conv_bn, conv_block

__all__ = [
    "resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "RESNET_LAYER_CONFIGS",
]

#: layers-per-stage and block type for each ResNet depth.
RESNET_LAYER_CONFIGS = {
    18: ("basic", [2, 2, 2, 2]),
    34: ("basic", [3, 4, 6, 3]),
    50: ("bottleneck", [3, 4, 6, 3]),
    101: ("bottleneck", [3, 4, 23, 3]),
    152: ("bottleneck", [3, 8, 36, 3]),
}

#: Per-stage base channel counts.
_STAGE_CHANNELS = [64, 128, 256, 512]


def _basic_block(
    builder: GraphBuilder,
    data: Node,
    channels: int,
    stride: int,
    downsample: bool,
    name: str,
) -> Node:
    """Two 3x3 convolutions with an identity (or projected) shortcut."""
    branch = conv_block(builder, data, channels, 3, stride, 1, name=f"{name}_conv1")
    branch = conv_bn(builder, branch, channels, 3, 1, 1, name=f"{name}_conv2")
    if downsample:
        shortcut = conv_bn(builder, data, channels, 1, stride, 0, name=f"{name}_down")
    else:
        shortcut = data
    added = builder.elemwise_add(branch, shortcut, name=f"{name}_add")
    return builder.relu(added, name=f"{name}_relu")


def _bottleneck_block(
    builder: GraphBuilder,
    data: Node,
    channels: int,
    stride: int,
    downsample: bool,
    name: str,
) -> Node:
    """1x1 reduce, 3x3, 1x1 expand (4x) with a shortcut."""
    expansion = channels * 4
    branch = conv_block(builder, data, channels, 1, 1, 0, name=f"{name}_conv1")
    branch = conv_block(builder, branch, channels, 3, stride, 1, name=f"{name}_conv2")
    branch = conv_bn(builder, branch, expansion, 1, 1, 0, name=f"{name}_conv3")
    if downsample:
        shortcut = conv_bn(builder, data, expansion, 1, stride, 0, name=f"{name}_down")
    else:
        shortcut = data
    added = builder.elemwise_add(branch, shortcut, name=f"{name}_add")
    return builder.relu(added, name=f"{name}_relu")


def resnet_backbone(
    builder: GraphBuilder,
    data: Node,
    depth: int,
    output_stages: Optional[Tuple[int, ...]] = None,
) -> "Node | List[Node]":
    """Build the convolutional trunk of a ResNet.

    Args:
        builder: graph builder to add nodes to.
        data: input image node.
        depth: one of 18/34/50/101/152.
        output_stages: when given, also return the intermediate outputs of the
            listed stages (1-based); used by SSD to tap the ResNet-50 trunk.

    Returns:
        The final feature map, or ``[final, *tapped]`` when ``output_stages``
        is given.
    """
    if depth not in RESNET_LAYER_CONFIGS:
        raise ValueError(
            f"unsupported ResNet depth {depth}; supported: {sorted(RESNET_LAYER_CONFIGS)}"
        )
    block_type, layers = RESNET_LAYER_CONFIGS[depth]
    block = _basic_block if block_type == "basic" else _bottleneck_block

    x = conv_block(builder, data, 64, 7, 2, 3, name="stem_conv")
    x = builder.max_pool2d(x, 3, 2, 1, name="stem_pool")

    tapped: List[Node] = []
    for stage_index, (num_blocks, channels) in enumerate(zip(layers, _STAGE_CHANNELS)):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            expansion = 4 if block_type == "bottleneck" else 1
            in_channels = x.spec.axis_extent("C")
            downsample = stride != 1 or in_channels != channels * expansion
            x = block(
                builder,
                x,
                channels,
                stride,
                downsample,
                name=f"stage{stage_index + 1}_block{block_index + 1}",
            )
        if output_stages and (stage_index + 1) in output_stages:
            tapped.append(x)
    if output_stages:
        return [x] + tapped
    return x


def resnet(
    depth: int,
    batch: int = 1,
    image_size: int = 224,
    num_classes: int = IMAGENET_CLASSES,
) -> Graph:
    """Build a complete ResNet classifier graph."""
    builder = GraphBuilder(f"resnet{depth}")
    data = builder.input("data", (batch, 3, image_size, image_size))
    features = resnet_backbone(builder, data, depth)
    output = classifier_head(builder, features, num_classes)
    return builder.build(output)


def resnet18(batch: int = 1, image_size: int = 224) -> Graph:
    """ResNet-18 (basic blocks, 2-2-2-2)."""
    return resnet(18, batch, image_size)


def resnet34(batch: int = 1, image_size: int = 224) -> Graph:
    """ResNet-34 (basic blocks, 3-4-6-3)."""
    return resnet(34, batch, image_size)


def resnet50(batch: int = 1, image_size: int = 224) -> Graph:
    """ResNet-50 (bottleneck blocks, 3-4-6-3)."""
    return resnet(50, batch, image_size)


def resnet101(batch: int = 1, image_size: int = 224) -> Graph:
    """ResNet-101 (bottleneck blocks, 3-4-23-3)."""
    return resnet(101, batch, image_size)


def resnet152(batch: int = 1, image_size: int = 224) -> Graph:
    """ResNet-152 (bottleneck blocks, 3-8-36-3)."""
    return resnet(152, batch, image_size)

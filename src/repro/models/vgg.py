"""VGG model family (Simonyan & Zisserman, 2014).

VGG-11/13/16/19 are plain chains of 3x3 convolutions — the structurally
simplest models of the evaluation, which is why the paper observes the
smallest additional gain from the global search on them (section 4.2.3): with
no branches there is little layout coupling to exploit beyond keeping the
blocked layout flowing.

The classifier uses the original two 4096-unit fully-connected layers (with
inference-time dropout that the simplification pass removes), which dominate
the parameter count and make VGG the most memory-bound model of the suite.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from .common import IMAGENET_CLASSES, conv_block

__all__ = ["vgg", "vgg11", "vgg13", "vgg16", "vgg19", "VGG_CONFIGS"]

#: Number of 3x3 convolutions per stage for each VGG depth.
VGG_CONFIGS: Dict[int, List[int]] = {
    11: [1, 1, 2, 2, 2],
    13: [2, 2, 2, 2, 2],
    16: [2, 2, 3, 3, 3],
    19: [2, 2, 4, 4, 4],
}

#: Output channels of each stage.
_STAGE_CHANNELS = [64, 128, 256, 512, 512]


def vgg(
    depth: int,
    batch: int = 1,
    image_size: int = 224,
    num_classes: int = IMAGENET_CLASSES,
    use_batch_norm: bool = True,
) -> Graph:
    """Build a VGG classifier graph.

    Args:
        depth: 11, 13, 16 or 19.
        batch: batch size (the paper uses 1).
        image_size: input resolution (224 in the evaluation).
        num_classes: classifier width.
        use_batch_norm: build the BN variant (as in the Gluon model zoo used
            by the paper's MXNet baseline).
    """
    if depth not in VGG_CONFIGS:
        raise ValueError(f"unsupported VGG depth {depth}; supported: {sorted(VGG_CONFIGS)}")
    builder = GraphBuilder(f"vgg{depth}")
    data = builder.input("data", (batch, 3, image_size, image_size))

    x = data
    for stage_index, (num_convs, channels) in enumerate(
        zip(VGG_CONFIGS[depth], _STAGE_CHANNELS)
    ):
        for conv_index in range(num_convs):
            name = f"stage{stage_index + 1}_conv{conv_index + 1}"
            if use_batch_norm:
                x = conv_block(builder, x, channels, 3, 1, 1, name=name)
            else:
                conv = builder.conv2d(x, channels, 3, 1, 1, use_bias=True, name=name)
                x = builder.relu(conv, name=f"{name}_relu")
        x = builder.max_pool2d(x, 2, 2, name=f"stage{stage_index + 1}_pool")

    x = builder.flatten(x, name="flatten")
    x = builder.dense(x, 4096, name="fc6")
    x = builder.relu(x, name="fc6_relu")
    x = builder.dropout(x, 0.5, name="fc6_dropout")
    x = builder.dense(x, 4096, name="fc7")
    x = builder.relu(x, name="fc7_relu")
    x = builder.dropout(x, 0.5, name="fc7_dropout")
    x = builder.dense(x, num_classes, name="fc8")
    output = builder.softmax(x, axis=-1, name="prob")
    return builder.build(output)


def vgg11(batch: int = 1, image_size: int = 224) -> Graph:
    """VGG-11 (configuration A)."""
    return vgg(11, batch, image_size)


def vgg13(batch: int = 1, image_size: int = 224) -> Graph:
    """VGG-13 (configuration B)."""
    return vgg(13, batch, image_size)


def vgg16(batch: int = 1, image_size: int = 224) -> Graph:
    """VGG-16 (configuration D)."""
    return vgg(16, batch, image_size)


def vgg19(batch: int = 1, image_size: int = 224) -> Graph:
    """VGG-19 (configuration E)."""
    return vgg(19, batch, image_size)

"""DenseNet model family (Huang et al., CVPR 2017).

DenseNet concatenates every layer's output with all previous outputs inside a
dense block.  The concatenations make the channel counts irregular multiples
of the growth rate, which stresses the layout machinery (channel counts must
stay divisible by the chosen block size or transforms appear) and creates
many layout-coupling edges for the global search.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..graph.node import Node
from .common import IMAGENET_CLASSES, classifier_head, conv_block

__all__ = [
    "densenet",
    "densenet121",
    "densenet161",
    "densenet169",
    "densenet201",
    "DENSENET_CONFIGS",
]

#: (growth_rate, initial_channels, block sizes) per depth.
DENSENET_CONFIGS: Dict[int, Tuple[int, int, List[int]]] = {
    121: (32, 64, [6, 12, 24, 16]),
    161: (48, 96, [6, 12, 36, 24]),
    169: (32, 64, [6, 12, 32, 32]),
    201: (32, 64, [6, 12, 48, 32]),
}


def _dense_layer(
    builder: GraphBuilder, data: Node, growth_rate: int, name: str
) -> Node:
    """BN-ReLU-1x1 bottleneck, BN-ReLU-3x3, concatenated with the input."""
    x = builder.batch_norm(data, name=f"{name}_bn1")
    x = builder.relu(x, name=f"{name}_relu1")
    x = builder.conv2d(x, 4 * growth_rate, 1, use_bias=False, name=f"{name}_conv1")
    x = builder.batch_norm(x, name=f"{name}_bn2")
    x = builder.relu(x, name=f"{name}_relu2")
    x = builder.conv2d(x, growth_rate, 3, padding=1, use_bias=False, name=f"{name}_conv2")
    return builder.concat([data, x], axis="C", name=f"{name}_concat")


def _transition(builder: GraphBuilder, data: Node, name: str) -> Node:
    """BN-ReLU-1x1 (halving channels) followed by 2x2 average pooling."""
    channels = data.spec.axis_extent("C") // 2
    x = builder.batch_norm(data, name=f"{name}_bn")
    x = builder.relu(x, name=f"{name}_relu")
    x = builder.conv2d(x, channels, 1, use_bias=False, name=f"{name}_conv")
    return builder.avg_pool2d(x, 2, 2, name=f"{name}_pool")


def densenet(
    depth: int,
    batch: int = 1,
    image_size: int = 224,
    num_classes: int = IMAGENET_CLASSES,
) -> Graph:
    """Build a DenseNet classifier graph."""
    if depth not in DENSENET_CONFIGS:
        raise ValueError(
            f"unsupported DenseNet depth {depth}; supported: {sorted(DENSENET_CONFIGS)}"
        )
    growth_rate, init_channels, block_sizes = DENSENET_CONFIGS[depth]
    builder = GraphBuilder(f"densenet{depth}")
    data = builder.input("data", (batch, 3, image_size, image_size))

    x = conv_block(builder, data, init_channels, 7, 2, 3, name="stem_conv")
    x = builder.max_pool2d(x, 3, 2, 1, name="stem_pool")

    for block_index, num_layers in enumerate(block_sizes):
        for layer_index in range(num_layers):
            x = _dense_layer(
                builder,
                x,
                growth_rate,
                name=f"block{block_index + 1}_layer{layer_index + 1}",
            )
        if block_index != len(block_sizes) - 1:
            x = _transition(builder, x, name=f"transition{block_index + 1}")

    x = builder.batch_norm(x, name="final_bn")
    x = builder.relu(x, name="final_relu")
    output = classifier_head(builder, x, num_classes)
    return builder.build(output)


def densenet121(batch: int = 1, image_size: int = 224) -> Graph:
    """DenseNet-121 (growth 32, blocks 6-12-24-16)."""
    return densenet(121, batch, image_size)


def densenet161(batch: int = 1, image_size: int = 224) -> Graph:
    """DenseNet-161 (growth 48, blocks 6-12-36-24)."""
    return densenet(161, batch, image_size)


def densenet169(batch: int = 1, image_size: int = 224) -> Graph:
    """DenseNet-169 (growth 32, blocks 6-12-32-32)."""
    return densenet(169, batch, image_size)


def densenet201(batch: int = 1, image_size: int = 224) -> Graph:
    """DenseNet-201 (growth 32, blocks 6-12-48-32)."""
    return densenet(201, batch, image_size)

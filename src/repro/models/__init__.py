"""Model zoo: the 15 CNN models of the paper's evaluation (Table 2)."""

from .common import IMAGENET_CLASSES, classifier_head, conv_block, conv_bn
from .densenet import densenet, densenet121, densenet161, densenet169, densenet201
from .inception import inception_v3
from .resnet import resnet, resnet18, resnet34, resnet50, resnet101, resnet152
from .ssd import ssd_resnet50
from .vgg import vgg, vgg11, vgg13, vgg16, vgg19
from .zoo import EVALUATION_MODELS, MODEL_REGISTRY, ModelInfo, get_model, list_models

__all__ = [
    "EVALUATION_MODELS",
    "IMAGENET_CLASSES",
    "MODEL_REGISTRY",
    "ModelInfo",
    "classifier_head",
    "conv_bn",
    "conv_block",
    "densenet",
    "densenet121",
    "densenet161",
    "densenet169",
    "densenet201",
    "get_model",
    "inception_v3",
    "list_models",
    "resnet",
    "resnet101",
    "resnet152",
    "resnet18",
    "resnet34",
    "resnet50",
    "ssd_resnet50",
    "vgg",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
]

"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``; this file exists
so that ``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (editable installs then go through ``setup.py develop``).
"""

from setuptools import setup

setup()

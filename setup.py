"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``; this file exists
so that ``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (editable installs then go through ``setup.py develop``).
"""

from setuptools import setup

setup(
    entry_points={
        # The model-repository CLI (same surface as `python -m repro.cli`).
        "console_scripts": ["repro-cli = repro.cli:main"],
    },
    extras_require={
        # Mirrors the CI install: pytest-timeout keeps a scheduler deadlock
        # from hanging the suite, pytest-benchmark drives benchmarks/.
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-timeout",
            "hypothesis",
        ],
    },
)

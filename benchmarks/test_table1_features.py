"""Table 1: qualitative feature comparison (capability matrix)."""

from conftest import write_result

from repro.evaluation import format_table1, run_table1


def test_table1_feature_matrix(benchmark, results_dir):
    """Regenerate the Table 1 capability matrix and check NeoCPU's claims."""
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert table["NeoCPU"] == {
        "op_level_opt": "yes",
        "graph_level_opt": "yes",
        "joint_opt": "yes",
        "open_source": "yes",
    }
    assert table["OpenVINO"]["open_source"] == "no"
    assert table["Glow"]["op_level_opt"] == "single core"
    write_result(results_dir, "table1_features", format_table1())

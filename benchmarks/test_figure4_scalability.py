"""Figure 4: multi-thread scalability of NeoCPU vs the baselines.

Reproduces the three panels — (a) ResNet-50 on 18-core Skylake, (b) VGG-19 on
24-core EPYC, (c) Inception-v3 on 16-core Cortex-A72 — sweeping the thread
count from 1 to all physical cores and reporting images/second for every
stack, including NeoCPU parallelized with OpenMP vs its custom thread pool.
"""

import pytest
from conftest import write_result

from repro.evaluation import FIGURE4_CONFIGS, run_figure4


@pytest.mark.parametrize("config", FIGURE4_CONFIGS, ids=[c[0] for c in FIGURE4_CONFIGS])
def test_figure4_scalability(benchmark, tuning_db, results_dir, config):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"label_model_target": config, "thread_step": 1, "tuning_db": tuning_db},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, f"figure{result.label}_{result.model}", result.format())

    pool = result.curves["NeoCPU w/ thread pool"]
    omp = result.curves["NeoCPU w/ OMP"]
    max_threads = pool.threads[-1]

    # Throughput increases with thread count for NeoCPU (no collapse).
    assert pool.images_per_sec[-1] == max(pool.images_per_sec)
    assert pool.speedup_at(max_threads) > 4.0

    # The custom thread pool scales better than the same kernels under OpenMP
    # (section 4.2.4), and better than every baseline stack.
    assert pool.peak_throughput > omp.peak_throughput
    assert pool.speedup_at(max_threads) > omp.speedup_at(max_threads)
    for name, curve in result.curves.items():
        if name.startswith("NeoCPU"):
            continue
        assert pool.peak_throughput > curve.peak_throughput, name

    if result.label == "4c":
        # MXNet/OpenBLAS scales worst on ARM (paper Figure 4c).
        baselines = [c for n, c in result.curves.items() if not n.startswith("NeoCPU")]
        worst = min(baselines, key=lambda c: c.speedup_at(max_threads))
        assert worst.stack == "MXNet"

"""Table 2c: overall performance on the 16-core ARM Cortex-A72 target.

Asserted shapes: only two baselines exist (no OpenVINO on ARM), NeoCPU wins
on every model by the largest margins of the three platforms (paper:
2.05-3.45x over the best baseline), and TensorFlow/Eigen beats
MXNet/OpenBLAS on ARM (the opposite of the x86 ordering).
"""

from conftest import write_result

from repro.evaluation import run_table2
from repro.models import EVALUATION_MODELS


def test_table2_arm_cortex_a72(benchmark, tuning_db, results_dir):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"target": "arm-cortex-a72", "models": EVALUATION_MODELS,
                "tuning_db": tuning_db},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "table2c_arm_cortex_a72", result.format())

    # No framework-agnostic baseline exists on ARM.
    assert "OpenVINO" not in result.frameworks

    # Paper: NeoCPU is best for all 15 models on ARM.
    assert result.neocpu_wins() == len(EVALUATION_MODELS)

    speedups = result.speedups_vs_best_baseline()
    # The ARM baselines are far less optimized: sizeable wins everywhere.
    assert all(value > 1.3 for value in speedups.values())
    assert max(speedups.values()) > 2.0

    latencies = result.latencies_ms
    # TensorFlow outperforms MXNet on ARM (paper attributes MXNet's loss to
    # OpenBLAS scalability, Figure 4c).
    better = sum(
        1 for model in EVALUATION_MODELS
        if latencies[model]["TensorFlow"] < latencies[model]["MXNet"]
    )
    assert better >= len(EVALUATION_MODELS) - 2

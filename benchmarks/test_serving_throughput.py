"""Serving throughput: dynamic batching vs the naive thread-pool map.

PR 2's ``serve_concurrent`` was a bare thread-pool map: every request ran
alone, requests never shared an executor pass, a slow queue meant a silent
hang, and a worker exception lost track of which request caused it.  The
request scheduler coalesces compatible requests into single stacked executor
passes, and the kernels carry the batch axis through the micro-kernel, so one
pass over N samples pays the interpreter overhead once.

Two claims are gated here on a ResNet-50 request stream **and** an
SSD-ResNet-50 detection stream (the detection heads used to bake the
build-time batch into their reshapes, which forced every SSD request onto
the serial path; with batch-polymorphic graphs SSD coalesces like any CNN):

* scheduler-batched serving is at least **2x** the naive pool-map throughput;
* the batched responses are **byte-identical** to the naive (per-request)
  path — dynamic batching must never change the numbers.

The models run at reduced input resolution (32x32), keeping the streams
large enough to exercise coalescing while the functional numpy executor
stays CI-sized; the tuning database is shared with the other benchmarks
through the session cache.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from conftest import write_result

from repro.api import InferenceEngine, Optimizer
from repro.graph import infer_shapes
from repro.models.resnet import resnet50
from repro.models.ssd import ssd_resnet50

NUM_REQUESTS = 24
MAX_BATCH_SIZE = 8
SPEEDUP_GATE = 2.0
#: The SSD stream is shorter: one functional SSD pass costs several ResNet-50
#: passes at the same resolution (detection head + extra feature stages).
SSD_NUM_REQUESTS = 12


def build_requests(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"data": rng.standard_normal((1, 3, 32, 32)).astype(np.float32)}
        for _ in range(count)
    ]


def naive_pool_map(executor, requests, max_workers=4):
    """PR 2's serve_concurrent: one executor pass per request on a pool."""
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(executor.run, requests))


def _gate_batched_serving(benchmark, results_dir, module, requests, label,
                          result_name):
    """Shared harness: naive pool map vs scheduler, byte-identity + 2x gate."""
    # Naive baseline: thread-pool map over per-request executor passes.
    naive_executor = module.create_executor(seed=0)
    naive_executor.run(requests[0])  # warm the constant cache
    start = time.perf_counter()
    naive_outputs = naive_pool_map(naive_executor, requests)
    naive_s = time.perf_counter() - start

    # Dynamic batching through the request scheduler.
    with InferenceEngine(
        module, seed=0, max_batch_size=MAX_BATCH_SIZE, batch_timeout_ms=20.0
    ) as engine:
        assert engine.batchable, engine.batchability_reason
        engine.run(requests[0])  # warm-up outside the timed region

        def serve():
            return engine.serve_concurrent(requests)

        batched_outputs = benchmark.pedantic(serve, rounds=1, iterations=1)
        start = time.perf_counter()
        batched_outputs = serve()
        batched_s = time.perf_counter() - start
        stats = engine.stats()

    # Byte-identical responses, in request order.
    for naive, batched in zip(naive_outputs, batched_outputs):
        assert len(naive) == len(batched)
        for naive_out, batched_out in zip(naive, batched):
            assert np.array_equal(naive_out, batched_out)

    count = len(requests)
    speedup = naive_s / batched_s
    lines = [
        f"{label} serving throughput ({count} requests, 32x32, skylake)",
        f"  naive pool map          : {naive_s * 1e3:8.1f} ms "
        f"({count / naive_s:6.1f} req/s)",
        f"  dynamic batching        : {batched_s * 1e3:8.1f} ms "
        f"({count / batched_s:6.1f} req/s)",
        f"  speedup                 : {speedup:8.1f}x",
        f"  mean batch size         : {stats.mean_batch_size:8.2f} "
        f"(max {stats.max_batch_size}, {stats.batches} executor passes)",
    ]
    write_result(results_dir, result_name, "\n".join(lines))

    assert stats.batched > 0, "scheduler never coalesced a batch"
    assert speedup >= SPEEDUP_GATE


def test_resnet50_stream_batched_serving_2x(benchmark, results_dir, tuning_db):
    graph = resnet50(image_size=32)
    infer_shapes(graph)
    module = Optimizer("skylake", database=tuning_db).compile(graph)
    _gate_batched_serving(
        benchmark,
        results_dir,
        module,
        build_requests(NUM_REQUESTS),
        "ResNet-50",
        "serving_throughput_resnet50",
    )


def test_ssd_stream_batched_serving_2x(benchmark, results_dir, tuning_db):
    """SSD coalesces under the scheduler: the detection-head reshapes carry a
    free (-1) batch extent, so ``InferenceEngine.batchable`` is True and the
    stacked stream must beat the naive pool map by >= 2x, byte-identically."""
    graph = ssd_resnet50(image_size=32)
    infer_shapes(graph)
    module = Optimizer("skylake", database=tuning_db).compile(graph)
    _gate_batched_serving(
        benchmark,
        results_dir,
        module,
        build_requests(SSD_NUM_REQUESTS, seed=7),
        "SSD-ResNet-50",
        "serving_throughput_ssd",
    )

"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The formatted
output of each experiment is written to ``benchmarks/results/`` so that the
numbers can be compared side by side with the published tables (see
EXPERIMENTS.md), in addition to the timing statistics pytest-benchmark
collects about the harness itself.

The tuning database is session-scoped *and* persistent: it lives in an
:class:`repro.api.Optimizer`-layout cache directory
(``benchmarks/.tuning_cache/``), is loaded at session start and saved at
session end, so repeated benchmark runs skip the local search entirely
instead of re-tuning every workload from scratch.  Delete the directory to
force a cold run.
"""

from pathlib import Path

import pytest

from repro.api import Optimizer

RESULTS_DIR = Path(__file__).parent / "results"
TUNING_CACHE_DIR = Path(__file__).parent / ".tuning_cache"


@pytest.fixture(scope="session")
def tuning_cache_dir():
    """The on-disk cache directory shared by every benchmark session.

    Uses the :class:`~repro.api.Optimizer` cache layout, so pointing an
    Optimizer at it (``Optimizer(target, cache_dir=tuning_cache_dir)``)
    shares the same persisted state.
    """
    TUNING_CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return TUNING_CACHE_DIR


@pytest.fixture(scope="session")
def tuning_db(tuning_cache_dir):
    """One tuning database shared by every benchmark in the session.

    The paper (section 3.3.1) stores local-search results per workload and CPU
    so that models sharing convolution workloads do not repeat the search —
    sharing the database across benchmarks exercises exactly that reuse, and
    persisting it across sessions (ROADMAP item) makes re-runs start warm.
    """
    database = Optimizer.load_tuning_database(tuning_cache_dir)
    yield database
    database.save(tuning_cache_dir / Optimizer.TUNING_DB_FILENAME)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a formatted experiment table and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")

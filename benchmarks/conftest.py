"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The formatted
output of each experiment is written to ``benchmarks/results/`` so that the
numbers can be compared side by side with the published tables (see
EXPERIMENTS.md), in addition to the timing statistics pytest-benchmark
collects about the harness itself.
"""

from pathlib import Path

import pytest

from repro.core import TuningDatabase

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tuning_db():
    """One tuning database shared by every benchmark in the session.

    The paper (section 3.3.1) stores local-search results per workload and CPU
    so that models sharing convolution workloads do not repeat the search —
    sharing the database across benchmarks exercises exactly that reuse.
    """
    return TuningDatabase()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a formatted experiment table and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")

"""Search-pipeline throughput: batched/parallel tuning vs the seed loop.

The seed implementation re-measured every candidate of every workload with a
per-candidate Python call into the cost model.  The overhauled pipeline
scores the whole candidate grid of a workload in one vectorized numpy pass,
tunes distinct workloads on a thread pool, and reuses the versioned tuning
database across models — which is what makes compiling the full model zoo
across the three CPU presets practical in one run.

Two claims are checked here:

* tuning the ResNet-50 workload set is at least 5x faster than the seed
  per-candidate loop, with *identical* tuning records;
* the global search driven by the fast pipeline produces identical (or
  lower-total-cost) schedule assignments on ResNet-50, VGG-19 and
  SSD-ResNet-50, and a warmed database makes the second compile of the zoo
  dramatically cheaper.
"""

import time

from conftest import write_result

from repro.core import CostModelMeasurer, GlobalSearch, LocalSearch, TuningDatabase
from repro.costmodel.graph_cost import conv_workload_from_node
from repro.graph import infer_shapes
from repro.hardware import get_target
from repro.models import get_model

PARITY_MODELS = ("resnet-50", "vgg-19", "ssd-resnet-50")


class SeedLoopMeasurer:
    """The seed pipeline's measurer: per-candidate calls, no batch interface.

    Delegates the measurement-context fingerprint so its database entries are
    keyed identically to the batched measurer's — the comparison below checks
    that the two pipelines produce byte-identical records under the same key.
    """

    def __init__(self, cpu):
        self._inner = CostModelMeasurer(cpu)

    def fingerprint(self):
        return self._inner.fingerprint()

    def measure(self, workload, schedule):
        return self._inner.measure(workload, schedule)


def unique_workloads(model_name):
    graph = get_model(model_name)
    infer_shapes(graph)
    workloads = {}
    for node in graph.op_nodes("conv2d"):
        workload = conv_workload_from_node(node)
        workloads[workload.key()] = workload
    return list(workloads.values())


def best_of(n, fn):
    """Minimum wall-clock of ``n`` runs (robust to CI scheduling noise)."""
    best_s, result = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, result


def test_resnet50_tuning_throughput(benchmark, results_dir):
    """Batched + parallel tuning beats the seed loop >= 5x, same records."""
    cpu = get_target("skylake")
    workloads = unique_workloads("resnet-50")

    seed_s, seed_db = best_of(
        3, lambda: LocalSearch(SeedLoopMeasurer(cpu), cpu.name).tune_all(workloads, jobs=1)
    )

    def tune_fast():
        return LocalSearch(CostModelMeasurer(cpu), cpu.name).tune_all(workloads)

    benchmark.pedantic(tune_fast, rounds=1, iterations=1)
    fast_s, fast_db = best_of(3, tune_fast)

    speedup = seed_s / fast_s
    lines = [
        f"ResNet-50 local-search throughput ({len(workloads)} unique workloads, "
        f"{cpu.name})",
        f"  seed per-candidate loop : {seed_s * 1e3:8.1f} ms",
        f"  batched + parallel      : {fast_s * 1e3:8.1f} ms",
        f"  speedup                 : {speedup:8.1f}x",
    ]
    write_result(results_dir, "search_throughput_resnet50", "\n".join(lines))
    assert fast_db.records == seed_db.records  # identical rankings and costs
    assert speedup >= 5.0


def test_cross_model_assignment_parity_and_warm_cache(benchmark, results_dir):
    """Fast pipeline = same (or cheaper) assignments; warm DB compiles ~free."""
    cpu = get_target("skylake")
    lines = [f"Global-search assignment parity and warm-cache reuse ({cpu.name})"]

    def run_all():
        shared_db = TuningDatabase()
        outcomes = []
        for model_name in PARITY_MODELS:
            seed_search = LocalSearch(SeedLoopMeasurer(cpu), cpu.name)
            seed_result = GlobalSearch(cpu, seed_search).run(
                infer_and_return(get_model(model_name))
            )

            start = time.perf_counter()
            fast_search = LocalSearch(
                CostModelMeasurer(cpu), cpu.name, database=shared_db
            )
            fast_result = GlobalSearch(cpu, fast_search).run(
                infer_and_return(get_model(model_name))
            )
            cold_s = time.perf_counter() - start

            # Second compile of the same model: every workload is a DB hit.
            entries_before_warm = len(shared_db)
            start = time.perf_counter()
            warm_search = LocalSearch(
                CostModelMeasurer(cpu), cpu.name, database=shared_db
            )
            warm_result = GlobalSearch(cpu, warm_search).run(
                infer_and_return(get_model(model_name))
            )
            warm_s = time.perf_counter() - start
            warm_retuned = len(shared_db) - entries_before_warm
            outcomes.append(
                (model_name, seed_result, fast_result, warm_result, cold_s, warm_s,
                 warm_retuned)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for (model_name, seed_result, fast_result, warm_result, cold_s, warm_s,
         warm_retuned) in outcomes:
        lines.append(
            f"  {model_name:<14s} seed={seed_result.total_cost_s * 1e3:8.3f} ms  "
            f"fast={fast_result.total_cost_s * 1e3:8.3f} ms  "
            f"cold-tune={cold_s * 1e3:7.1f} ms  warm-tune={warm_s * 1e3:6.1f} ms"
        )
        # Identical (or lower-total-cost) assignments, never worse.
        assert fast_result.total_cost_s <= seed_result.total_cost_s * (1 + 1e-9)
        assert fast_result.schedules == seed_result.schedules
        # The warmed database must reproduce the same assignment without any
        # re-tuning (a deterministic cache gate; the timings above are
        # informational, single-shot wall clock is too noisy for CI).
        assert warm_result.schedules == fast_result.schedules
        assert warm_retuned == 0
    write_result(results_dir, "search_throughput_cross_model", "\n".join(lines))


def infer_and_return(graph):
    infer_shapes(graph)
    return graph

"""Multi-process serving: the daemon's worker fleet vs one process (ISSUE 8).

The single-process scheduler owns batching and priority, but it still lives
under one GIL: the functional numpy executor spends real interpreter time
per node, so one serving process leaves cores idle that a second process
could use.  The multi-process tier (``repro.api.dispatch``) shards a
request stream across worker processes that each load the *same* artifact
from the *same* repository — cross-process pin files keep repository GC
safe beside them.

Gated claims, on a ResNet-50 stream at reduced resolution (32x32):

* aggregate throughput of a 2-worker dispatcher is at least **1x** the
  single-process scheduler on the same stream (the fleet must never cost
  throughput; on multi-core hosts it typically wins well above the gate);
* every response served by the fleet is **byte-identical** to the
  single-process engine's response for the same request.

The artifact bundle and tuning database persist in the session cache, so
re-runs start warm.
"""

import os
import time

import numpy as np
from conftest import write_result

from repro.api import EngineDispatcher, build, load_engine
from repro.graph import infer_shapes
from repro.models.resnet import resnet50

#: 32 requests split evenly over 2 workers give every engine full batches
#: (4x8 single-process, 2x8 per worker): the gate compares scheduling tiers,
#: not batch-density accidents.
NUM_REQUESTS = 32
NUM_WORKERS = 2
MAX_BATCH_SIZE = 8
THROUGHPUT_GATE = 1.0
#: A single hardware core cannot run two worker processes in parallel, so the
#: fleet can only tie the single process minus the IPC/timeslicing tax.  On
#: such hosts the gate degrades to "the tax is bounded, no pathological
#: collapse" — the >= 1x claim is gated wherever the fleet has a second core
#: to use (CI runners do).
SINGLE_CORE_GATE = 0.35

ENGINE_KWARGS = {
    "host": "skylake",
    "seed": 0,
    "max_batch_size": MAX_BATCH_SIZE,
    "batch_timeout_ms": 20.0,
}


def build_requests(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"data": rng.standard_normal((1, 3, 32, 32)).astype(np.float32)}
        for _ in range(count)
    ]


def _drain(dispatcher, requests):
    futures = [dispatcher.submit(request) for request in requests]
    return [future.result(timeout=600.0) for future in futures]


def _timed_stream(submit, requests):
    """Submit the whole stream; outputs, wall time, per-request latencies.

    Latency is stream-start-to-completion (the whole stream submits within
    microseconds, so this is each request's sojourn time), recorded from the
    futures' done callbacks — callback threads append to a list, and list
    appends are atomic.
    """
    latencies = []
    start = time.perf_counter()
    futures = []
    for request in requests:
        future = submit(request)
        future.add_done_callback(
            lambda _f: latencies.append(time.perf_counter() - start)
        )
        futures.append(future)
    outputs = [future.result(timeout=600.0) for future in futures]
    elapsed = time.perf_counter() - start
    return outputs, elapsed, latencies


def test_resnet50_stream_multiprocess_serving(
    benchmark, results_dir, tuning_cache_dir, tuning_db
):
    graph = resnet50(image_size=32)
    infer_shapes(graph)
    bundle = build(
        graph,
        ["skylake"],
        cache_dir=tuning_cache_dir,
        database=tuning_db,
        jobs=1,
    )
    requests = build_requests(NUM_REQUESTS)

    # Single-process baseline: the scheduler engine, loaded the same way the
    # workers load it.
    with load_engine(bundle.path, **ENGINE_KWARGS) as engine:
        engine.run(requests[0])  # warm the constant cache
        single_outputs, single_s, single_lat = _timed_stream(
            engine.submit, requests
        )

    with EngineDispatcher(
        bundle.path, num_workers=NUM_WORKERS, engine_kwargs=ENGINE_KWARGS
    ) as dispatcher:
        # Warm every worker: concurrent submits spread over the fleet by the
        # least-outstanding routing.
        _drain(dispatcher, requests[:NUM_WORKERS] * 2)

        def serve():
            return _timed_stream(dispatcher.submit, requests)

        benchmark.pedantic(serve, rounds=1, iterations=1)
        fleet_outputs, fleet_s, fleet_lat = serve()

    # Byte-identical responses, in request order.
    for single, fleet in zip(single_outputs, fleet_outputs):
        assert len(single) == len(fleet)
        for single_out, fleet_out in zip(single, fleet):
            assert np.array_equal(single_out, fleet_out)

    count = len(requests)
    ratio = single_s / fleet_s
    cores = os.cpu_count() or 1
    gate = THROUGHPUT_GATE if cores >= 2 else SINGLE_CORE_GATE
    single_p99 = float(np.percentile(single_lat, 99))
    fleet_p99 = float(np.percentile(fleet_lat, 99))
    lines = [
        f"multi-process serving ({count} requests, ResNet-50 32x32, skylake, "
        f"{cores} core(s))",
        f"  single-process scheduler: {single_s * 1e3:8.1f} ms "
        f"({count / single_s:6.1f} req/s, p99 {single_p99 * 1e3:7.1f} ms)",
        f"  {NUM_WORKERS}-worker dispatcher    : {fleet_s * 1e3:8.1f} ms "
        f"({count / fleet_s:6.1f} req/s, p99 {fleet_p99 * 1e3:7.1f} ms)",
        f"  aggregate speedup       : {ratio:8.2f}x (gate >= {gate:.2f}x)",
    ]
    write_result(results_dir, "daemon_throughput_resnet50", "\n".join(lines))

    assert ratio >= gate, (
        f"2-worker fleet served {count / fleet_s:.1f} req/s vs "
        f"{count / single_s:.1f} req/s single-process on {cores} core(s)"
    )

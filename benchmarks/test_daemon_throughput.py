"""Multi-process serving: the daemon's worker fleet vs one process (ISSUE 8).

The single-process scheduler owns batching and priority, but it still lives
under one GIL: the functional numpy executor spends real interpreter time
per node, so one serving process leaves cores idle that a second process
could use.  The multi-process tier (``repro.api.dispatch``) shards a
request stream across worker processes that each load the *same* artifact
from the *same* repository — cross-process pin files keep repository GC
safe beside them.

Gated claims, on a ResNet-50 stream at reduced resolution (32x32):

* aggregate throughput of a 2-worker dispatcher is at least **1x** the
  single-process scheduler on the same stream (the fleet must never cost
  throughput; on multi-core hosts it typically wins well above the gate);
* every response served by the fleet is **byte-identical** to the
  single-process engine's response for the same request.

A second benchmark records the same stream as a trace (ISSUE 10) through a
single uncontended worker and gates the replayer against it: the simulated
throughput at the recorded knobs must match the measurement, and the
replayed p99-vs-worker-count curve must be monotone-sane relative to the
host's core budget (spare cores help the tail, oversubscription never does).

The artifact bundle and tuning database persist in the session cache, so
re-runs start warm.
"""

import os
import time

import numpy as np
from conftest import write_result

from repro.api import EngineDispatcher, build, load_engine
from repro.graph import infer_shapes
from repro.models.resnet import resnet50
from repro.trace import measured_metrics, read_trace, replay, worker_sweep

#: 32 requests split evenly over 2 workers give every engine full batches
#: (4x8 single-process, 2x8 per worker): the gate compares scheduling tiers,
#: not batch-density accidents.
NUM_REQUESTS = 32
NUM_WORKERS = 2
MAX_BATCH_SIZE = 8
THROUGHPUT_GATE = 1.0
#: A single hardware core cannot run two worker processes in parallel, so the
#: fleet can only tie the single process minus the IPC/timeslicing tax.  On
#: such hosts the gate degrades to "the tax is bounded, no pathological
#: collapse" — the >= 1x claim is gated wherever the fleet has a second core
#: to use (CI runners do).
SINGLE_CORE_GATE = 0.35

ENGINE_KWARGS = {
    "host": "skylake",
    "seed": 0,
    "max_batch_size": MAX_BATCH_SIZE,
    "batch_timeout_ms": 20.0,
}


def build_requests(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"data": rng.standard_normal((1, 3, 32, 32)).astype(np.float32)}
        for _ in range(count)
    ]


def _drain(dispatcher, requests):
    futures = [dispatcher.submit(request) for request in requests]
    return [future.result(timeout=600.0) for future in futures]


def _timed_stream(submit, requests):
    """Submit the whole stream; outputs, wall time, per-request latencies.

    Latency is stream-start-to-completion (the whole stream submits within
    microseconds, so this is each request's sojourn time), recorded from the
    futures' done callbacks — callback threads append to a list, and list
    appends are atomic.
    """
    latencies = []
    start = time.perf_counter()
    futures = []
    for request in requests:
        future = submit(request)
        future.add_done_callback(
            lambda _f: latencies.append(time.perf_counter() - start)
        )
        futures.append(future)
    outputs = [future.result(timeout=600.0) for future in futures]
    elapsed = time.perf_counter() - start
    return outputs, elapsed, latencies


def test_resnet50_stream_multiprocess_serving(
    benchmark, results_dir, tuning_cache_dir, tuning_db
):
    graph = resnet50(image_size=32)
    infer_shapes(graph)
    bundle = build(
        graph,
        ["skylake"],
        cache_dir=tuning_cache_dir,
        database=tuning_db,
        jobs=1,
    )
    requests = build_requests(NUM_REQUESTS)

    # Single-process baseline: the scheduler engine, loaded the same way the
    # workers load it.
    with load_engine(bundle.path, **ENGINE_KWARGS) as engine:
        engine.run(requests[0])  # warm the constant cache
        single_outputs, single_s, single_lat = _timed_stream(
            engine.submit, requests
        )

    with EngineDispatcher(
        bundle.path, num_workers=NUM_WORKERS, engine_kwargs=ENGINE_KWARGS
    ) as dispatcher:
        # Warm every worker: concurrent submits spread over the fleet by the
        # least-outstanding routing.
        _drain(dispatcher, requests[:NUM_WORKERS] * 2)

        def serve():
            return _timed_stream(dispatcher.submit, requests)

        benchmark.pedantic(serve, rounds=1, iterations=1)
        fleet_outputs, fleet_s, fleet_lat = serve()

    # Byte-identical responses, in request order.
    for single, fleet in zip(single_outputs, fleet_outputs):
        assert len(single) == len(fleet)
        for single_out, fleet_out in zip(single, fleet):
            assert np.array_equal(single_out, fleet_out)

    count = len(requests)
    ratio = single_s / fleet_s
    cores = os.cpu_count() or 1
    gate = THROUGHPUT_GATE if cores >= 2 else SINGLE_CORE_GATE
    single_p99 = float(np.percentile(single_lat, 99))
    fleet_p99 = float(np.percentile(fleet_lat, 99))
    lines = [
        f"multi-process serving ({count} requests, ResNet-50 32x32, skylake, "
        f"{cores} core(s))",
        f"  single-process scheduler: {single_s * 1e3:8.1f} ms "
        f"({count / single_s:6.1f} req/s, p99 {single_p99 * 1e3:7.1f} ms)",
        f"  {NUM_WORKERS}-worker dispatcher    : {fleet_s * 1e3:8.1f} ms "
        f"({count / fleet_s:6.1f} req/s, p99 {fleet_p99 * 1e3:7.1f} ms)",
        f"  aggregate speedup       : {ratio:8.2f}x (gate >= {gate:.2f}x)",
    ]
    write_result(results_dir, "daemon_throughput_resnet50", "\n".join(lines))

    assert ratio >= gate, (
        f"2-worker fleet served {count / fleet_s:.1f} req/s vs "
        f"{count / single_s:.1f} req/s single-process on {cores} core(s)"
    )


#: The trace is recorded through a *single* worker: multiple processes
#: timeslicing the host's cores dilate the recorded batch wall-times, which
#: would contaminate the calibration the sweep rests on.  Record clean,
#: predict the fleet — the canonical capacity-planning workflow.
RECORD_WORKERS = 1
#: Replay fidelity tolerance at the recorded knobs.  A fully saturating
#: burst is the model's hardest regime and a loaded CI machine can make a
#: recording unrepresentative, so the gate is generous and a noisy
#: *recording* (not the model) is retried up to 3 times.
REPLAY_TOLERANCE = 0.30
#: Fleet sizes for the replayed p99 curve; 1 is the recorded point.
WORKER_CURVE = (1, 2, 4)
#: Within the host's core budget, adding a worker may never *worsen*
#: predicted p99 by more than this — ResNet-class per-sample-dominated costs
#: should parallelize monotonically while there are cores to parallelize on.
CURVE_SLACK = 0.05
#: Past the core budget the claim flips — oversubscribing may never
#: materially *help* the tail.  Looser than CURVE_SLACK: splitting one
#: stream over two schedulers changes batch shapes, which legitimately moves
#: p99 a little either way even with zero spare cores.
OVERSUB_SLACK = 0.25


def test_resnet50_replayed_p99_worker_curve(
    results_dir, tuning_cache_dir, tuning_db, tmp_path
):
    graph = resnet50(image_size=32)
    infer_shapes(graph)
    bundle = build(
        graph,
        ["skylake"],
        cache_dir=tuning_cache_dir,
        database=tuning_db,
        jobs=1,
    )
    requests = build_requests(NUM_REQUESTS)

    errors = []
    for attempt in range(3):
        trace_dir = tmp_path / f"trace-{attempt}"
        with EngineDispatcher(
            bundle.path,
            num_workers=RECORD_WORKERS,
            engine_kwargs=ENGINE_KWARGS,
            trace_dir=str(trace_dir),
        ) as dispatcher:
            # Warm-up requests are recorded too: measurement and replay see
            # the identical event stream, so the comparison stays fair.
            _drain(dispatcher, requests[:2])
            _timed_stream(dispatcher.submit, requests)
        trace = read_trace(trace_dir)
        measured = measured_metrics(trace)
        predicted = replay(trace)
        errors.append(
            abs(predicted.metrics.throughput_rps - measured.throughput_rps)
            / max(measured.throughput_rps, 1e-9)
        )
        if errors[-1] <= REPLAY_TOLERANCE:
            break
    else:
        raise AssertionError(
            f"replay fidelity gate: 3 recordings all predicted outside "
            f"+-{REPLAY_TOLERANCE:.0%} "
            f"(errors: {', '.join(f'{e:.1%}' for e in errors)})"
        )

    result = worker_sweep(trace, WORKER_CURVE)
    by_count = {
        report.knobs.processes: report
        for report in [result.baseline] + result.points
    }
    p99 = {
        count: by_count[count].metrics.latency_ms["p99"]
        for count in WORKER_CURVE
    }

    lines = [
        f"replayed p99 vs worker count (ResNet-50 32x32 trace, "
        f"{measured.completed} requests)",
        f"  measured  ({RECORD_WORKERS} worker(s)): "
        f"{measured.throughput_rps:6.1f} req/s, "
        f"p99 {measured.latency_ms['p99']:7.1f} ms",
        f"  replayed  ({RECORD_WORKERS} worker(s)): "
        f"{predicted.metrics.throughput_rps:6.1f} req/s, "
        f"p99 {predicted.metrics.latency_ms['p99']:7.1f} ms "
        f"| fidelity error {errors[-1]:.1%} (gate <= {REPLAY_TOLERANCE:.0%})",
    ]
    for count in WORKER_CURVE:
        lines.append(
            f"  predicted ({count} worker(s)): p99 {p99[count]:7.1f} ms, "
            f"{by_count[count].metrics.throughput_rps:6.1f} req/s"
        )
    write_result(results_dir, "daemon_replayed_worker_curve", "\n".join(lines))

    # Monotone-sane, relative to the host's core budget (the replayer's
    # dilation model knows how many cores the trace was recorded on):
    # while the fleet still has spare cores, a bigger fleet never predicts a
    # materially worse tail; past the core count, oversubscription never
    # predicts a materially *better* one.
    cores = os.cpu_count() or 1
    for smaller, larger in zip(WORKER_CURVE, WORKER_CURVE[1:]):
        if larger <= cores:
            assert p99[larger] <= p99[smaller] * (1.0 + CURVE_SLACK), (
                f"replayed p99 got worse going {smaller} -> {larger} workers "
                f"on {cores} core(s): "
                f"{p99[smaller]:.1f} ms -> {p99[larger]:.1f} ms"
            )
        elif smaller >= cores:
            assert p99[larger] >= p99[smaller] * (1.0 - OVERSUB_SLACK), (
                f"replay predicts oversubscribing {cores} core(s) helps the "
                f"tail ({smaller} -> {larger} workers: "
                f"{p99[smaller]:.1f} ms -> {p99[larger]:.1f} ms)"
            )
    if cores >= WORKER_CURVE[-1]:
        assert p99[WORKER_CURVE[-1]] < p99[WORKER_CURVE[0]], (
            f"a {WORKER_CURVE[-1]}-worker fleet should beat a single process "
            f"on a saturating stream with {cores} core(s), got p99 "
            f"{p99[WORKER_CURVE[-1]]:.1f} ms vs {p99[WORKER_CURVE[0]]:.1f} ms"
        )

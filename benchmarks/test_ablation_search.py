"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

* PBQP approximation vs exact dynamic programming (paper: >= 88 % of the DP
  optimum where both are tractable, and only SSD needs the approximation).
* Uniform split factor vs per-convolution factors (part of Table 3, measured
  here directly as transform_elim vs global levels).
* The register-blocking factor ``reg_n`` and ``unroll_ker`` knobs of the
  schedule template (section 3.3.1's candidate dimensions).
"""

from conftest import write_result

from repro.api import CompileConfig, OptLevel, Optimizer
from repro.core import CostModelMeasurer, GlobalSearch, LocalSearch
from repro.costmodel import ConvCostModel
from repro.graph import infer_shapes
from repro.hardware import get_target
from repro.models import get_model
from repro.schedule import ConvSchedule, ConvWorkload


def test_pbqp_vs_dp_quality(benchmark, tuning_db, results_dir):
    """The PBQP approximation reaches >=88% of the DP result (section 3.3.2)."""
    cpu = get_target("skylake")

    def run_both():
        outcomes = {}
        for model_name in ("resnet-18", "resnet-34"):
            search = LocalSearch(
                CostModelMeasurer(cpu), cpu.name, database=tuning_db, top_k=6
            )
            ratios = {}
            for method in ("dp", "pbqp"):
                graph = get_model(model_name)
                infer_shapes(graph)
                result = GlobalSearch(cpu, search, method=method).run(graph)
                ratios[method] = result.total_cost_s
            outcomes[model_name] = ratios
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["PBQP approximation vs exact DP (objective seconds, lower is better)"]
    for model_name, ratios in outcomes.items():
        quality = ratios["dp"] / ratios["pbqp"]
        lines.append(
            f"  {model_name:<12s} dp={ratios['dp'] * 1e3:.3f} ms  "
            f"pbqp={ratios['pbqp'] * 1e3:.3f} ms  dp/pbqp={quality:.3f}"
        )
        assert quality >= 0.88  # paper's reported bound
    write_result(results_dir, "ablation_pbqp_vs_dp", "\n".join(lines))


def test_uniform_vs_per_conv_split_factor(benchmark, tuning_db, results_dir):
    """Per-CONV split factors (global search) beat one global factor (3.2 vs 3.3)."""
    cpu = get_target("skylake")

    def run_levels():
        optimizer = Optimizer(cpu, database=tuning_db)
        latencies = {}
        for level in (OptLevel.TRANSFORM_ELIM, OptLevel.GLOBAL):
            module = optimizer.compile(
                "resnet-50", config=CompileConfig(opt_level=level)
            )
            latencies[level] = module.estimate_latency_ms()
        return latencies

    latencies = benchmark.pedantic(run_levels, rounds=1, iterations=1)
    uniform = latencies[OptLevel.TRANSFORM_ELIM]
    searched = latencies[OptLevel.GLOBAL]
    write_result(
        results_dir,
        "ablation_uniform_vs_per_conv_split",
        f"ResNet-50 on Skylake: uniform split {uniform:.2f} ms, "
        f"per-conv (global search) {searched:.2f} ms "
        f"({uniform / searched:.2f}x)",
    )
    assert searched < uniform


def test_schedule_knob_sensitivity(benchmark, results_dir):
    """reg_n amortizes kernel loads; unroll_ker helps small kernels (3.1.1)."""
    cpu = get_target("skylake")
    model = ConvCostModel(cpu)
    workload = ConvWorkload(1, 64, 56, 56, 64, 3, 3, (1, 1), (1, 1))

    def sweep():
        rows = []
        for reg_n in (1, 2, 4, 8, 16, 28):
            schedule = ConvSchedule(16, 16, reg_n, True)
            rows.append((reg_n, model.estimate(workload, schedule, 1).total_time_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["reg_n sweep for 64x56x56 3x3 conv (single thread, Skylake)"]
    for reg_n, seconds in rows:
        lines.append(f"  reg_n={reg_n:<3d} {seconds * 1e3:8.4f} ms")
    times = dict(rows)
    # Too little register blocking wastes FMA slots...
    assert times[1] > times[8]
    # ...and the schedule with unrolling beats the same without on 3x3 kernels.
    with_unroll = model.estimate(workload, ConvSchedule(16, 16, 8, True), 1).total_time_s
    without = model.estimate(workload, ConvSchedule(16, 16, 8, False), 1).total_time_s
    assert with_unroll < without
    lines.append(f"  unroll_ker True vs False at reg_n=8: "
                 f"{with_unroll * 1e3:.4f} vs {without * 1e3:.4f} ms")
    write_result(results_dir, "ablation_schedule_knobs", "\n".join(lines))

"""Table 3: cumulative speedup of each optimization stage over the NCHW baseline.

Reproduces the ablation on the Intel Skylake target for ResNet-50, VGG-19,
DenseNet-201, Inception-v3 and SSD-ResNet-50: blocked-layout convolution
("Layout Opt."), layout-transform elimination ("Transform Elim.") and the
global scheme search ("Global Search"), each row cumulative.
"""

from conftest import write_result

from repro.evaluation import PAPER_TABLE3_SPEEDUPS, TABLE3_MODELS, run_table3


def test_table3_optimization_ablation(benchmark, tuning_db, results_dir):
    result = benchmark.pedantic(
        run_table3,
        kwargs={"target": "intel-skylake", "models": TABLE3_MODELS,
                "tuning_db": tuning_db},
        rounds=1,
        iterations=1,
    )
    speedups = result.speedups()

    lines = [result.format(), "", "Paper reference speedups:"]
    for label, per_model in PAPER_TABLE3_SPEEDUPS.items():
        lines.append(f"  {label:<16s} " + "  ".join(
            f"{model}={value:.2f}" for model, value in per_model.items()
        ))
    write_result(results_dir, "table3_ablation", "\n".join(lines))

    for model in TABLE3_MODELS:
        layout = speedups["Layout Opt."][model]
        elim = speedups["Transform Elim."][model]
        glob = speedups["Global Search"][model]
        # The blocked layout alone is worth several-fold (paper: 4.1-8.3x).
        assert layout > 2.5, f"{model}: layout speedup {layout:.2f} too small"
        # Eliminating transforms never hurts and usually helps further.
        assert elim >= layout * 0.95
        # The global search gives the best end-to-end number.
        assert glob >= elim * 0.99
        assert glob == max(speedups[row][model] for row in speedups)

    # Relative ordering from section 4.2.3: ResNet-50 gains more from the
    # global search than VGG-19 (more complex structure, more room).
    resnet_gain = speedups["Global Search"]["resnet-50"] / speedups["Transform Elim."]["resnet-50"]
    vgg_gain = speedups["Global Search"]["vgg-19"] / speedups["Transform Elim."]["vgg-19"]
    assert resnet_gain >= vgg_gain

"""Table 2b: overall performance on the 24-core AMD EPYC target.

Asserted shapes: NeoCPU is best on (nearly) all models, the gap over the best
baseline is wider than on Intel (MKL-DNN is less tuned for AMD; paper:
0.92-1.72x), OpenVINO's AMD outliers (ResNet-101/152, VGG, DenseNet-161/169/
201) are orders of magnitude slower, and everything is slower than on the
Skylake machine despite more cores (half-rate AVX2 FMA on Zen 1).
"""

from conftest import write_result

from repro.evaluation import run_table2
from repro.models import EVALUATION_MODELS


def test_table2_amd_epyc(benchmark, tuning_db, results_dir):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"target": "amd-epyc", "models": EVALUATION_MODELS,
                "tuning_db": tuning_db},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "table2b_amd_epyc", result.format())

    # Paper: NeoCPU is best for 14 of 15 models on AMD.
    assert result.neocpu_wins() >= 13

    speedups = result.speedups_vs_best_baseline()
    assert all(value > 0.9 for value in speedups.values())

    latencies = result.latencies_ms
    # OpenVINO outliers on AMD (paper: 1711 ms for ResNet-101, 2515 ms for
    # ResNet-152, 660-1113 ms for VGG) — at least an order of magnitude off.
    for model in ("resnet-101", "resnet-152", "vgg-19", "densenet-161"):
        assert latencies[model]["OpenVINO"] > 8 * latencies[model]["NeoCPU"]
    # ResNet-50 and VGG-16 stay reasonable for OpenVINO (no pathology there).
    assert latencies["resnet-50"]["OpenVINO"] < 5 * latencies["resnet-50"]["NeoCPU"]

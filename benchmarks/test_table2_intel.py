"""Table 2a: overall performance on the 18-core Intel Skylake target.

Regenerates the full 15-model x 4-stack latency grid.  The shapes asserted
are the paper's headline claims for this sub-table: NeoCPU has the lowest
latency on (nearly) every model, the advantage over the best baseline is
modest (the x86 baselines are MKL-DNN-backed and well tuned), OpenVINO's VGG
latencies are pathological, and TensorFlow's SSD latency is dominated by its
branch handling.
"""

from conftest import write_result

from repro.evaluation import run_table2
from repro.models import EVALUATION_MODELS


def test_table2_intel_skylake(benchmark, tuning_db, results_dir):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"target": "intel-skylake", "models": EVALUATION_MODELS,
                "tuning_db": tuning_db},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "table2a_intel_skylake", result.format())

    # Paper: NeoCPU is best for 13 of the 15 models on Intel.
    assert result.neocpu_wins() >= 13

    speedups = result.speedups_vs_best_baseline()
    # Modest advantage over the best baseline on x86 (paper: 0.94-1.15x).
    assert all(value > 0.9 for value in speedups.values())
    assert min(speedups.values()) < 2.0

    latencies = result.latencies_ms
    # OpenVINO's VGG pathology (paper: ~138 ms vs ~12-21 ms for the others).
    assert latencies["vgg-16"]["OpenVINO"] > 4 * latencies["vgg-16"]["NeoCPU"]
    # TensorFlow SSD branching penalty (paper: 359 ms vs 31-43 ms).
    assert latencies["ssd-resnet-50"]["TensorFlow"] > 5 * latencies["ssd-resnet-50"]["NeoCPU"]
    # Latency grows with model depth within a family.
    for stack in ("NeoCPU", "MXNet"):
        assert latencies["resnet-152"][stack] > latencies["resnet-50"][stack] > latencies["resnet-18"][stack]
        assert latencies["vgg-19"][stack] > latencies["vgg-11"][stack]
